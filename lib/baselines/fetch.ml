module Linear = Cet_disasm.Linear

let analyze_impl passes reader =
  let starts = Common.fde_starts reader in
  match Cet_elf.Reader.find_section reader ".text" with
  | None -> starts
  | Some text ->
    let text_end = text.vaddr + text.size in
    let starts = List.filter (fun a -> a >= text.vaddr && a < text_end) starts in
    if starts = [] then []
    else begin
      let sweep = Linear.sweep_text reader in
      (* Extents from consecutive FDE starts (FDEs carry pc_range, but the
         derived extent matches and keeps the pass uniform). *)
      let arr = Array.of_list starts in
      let extents =
        Array.to_list
          (Array.mapi
             (fun i lo ->
               let hi = if i + 1 < Array.length arr then arr.(i + 1) else text_end in
               (lo, hi))
             arr)
      in
      (* FETCH's two verification analyses: stack-height tracking for
         tail-call targets, and calling-convention profiling of every
         candidate — the "more complicated techniques" behind its runtime
         (§V-D). *)
      let tail_targets = Common.stack_height_tail_targets sweep ~extents ~passes in
      let verified = Common.calling_convention_scan sweep ~extents ~passes:(passes * 2) in
      ignore verified;
      List.sort_uniq compare (starts @ tail_targets)
    end

let analyze ?(passes = 22) reader =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"baseline.fetch" (fun () -> analyze_impl passes reader)
  else analyze_impl passes reader
