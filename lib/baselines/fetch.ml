module Substrate = Cet_disasm.Substrate

let analyze_st_impl passes st =
  let starts = Substrate.fde_starts st in
  match Substrate.text st with
  | None -> starts
  | Some text ->
    let text_end = text.vaddr + text.size in
    let starts = List.filter (fun a -> a >= text.vaddr && a < text_end) starts in
    if starts = [] then []
    else begin
      let sweep = Substrate.sweep st in
      (* Extents from consecutive FDE starts (FDEs carry pc_range, but the
         derived extent matches and keeps the pass uniform). *)
      let arr = Array.of_list starts in
      let extents =
        Array.to_list
          (Array.mapi
             (fun i lo ->
               let hi = if i + 1 < Array.length arr then arr.(i + 1) else text_end in
               (lo, hi))
             arr)
      in
      (* FETCH's two verification analyses: stack-height tracking for
         tail-call targets, and calling-convention profiling of every
         candidate — the "more complicated techniques" behind its runtime
         (§V-D). *)
      let tail_targets = Common.stack_height_tail_targets sweep ~extents ~passes in
      let verified = Common.calling_convention_scan sweep ~extents ~passes:(passes * 2) in
      ignore verified;
      List.sort_uniq Int.compare (starts @ tail_targets)
    end

let analyze_st ?(passes = 22) st =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"baseline.fetch" (fun () -> analyze_st_impl passes st)
  else analyze_st_impl passes st

let analyze ?(passes = 22) reader = analyze_st ~passes (Substrate.create reader)
