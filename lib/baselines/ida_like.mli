(** IDA-like identifier: recursive descent from the entry point with
    signature-based gap scanning.

    The model mirrors what the paper observes of IDA Pro 7.6 (§V-C): strong
    on directly reachable code (call-graph traversal plus FLIRT-style
    prologue signatures) but blind to functions reachable only through
    indirect branches — the cause of 96% of its false negatives — because
    it neither consumes [.eh_frame] aggressively nor treats end-branch
    markers as entry hints. *)

val analyze : Cet_elf.Reader.t -> int list
(** Identified function entries, sorted. *)

val analyze_st : Cet_disasm.Substrate.t -> int list
(** {!analyze} over a shared per-binary substrate (sweep and index arrays
    reused across tools). *)
