type kind =
  | Endbr64
  | Endbr32
  | Call_direct of int
  | Jmp_direct of int
  | Jcc_direct of int
  | Call_indirect of { goto : int option }
  | Jmp_indirect of { notrack : bool; goto : int option }
  | Ret
  | Halt
  | Addr_ref of int
  | Other

type ins = { addr : int; len : int; kind : kind }

exception Bad of string

type cursor = { code : string; limit : int; mutable p : int }

let u8 c =
  if c.p >= c.limit then raise (Bad "truncated");
  let v = Char.code c.code.[c.p] in
  c.p <- c.p + 1;
  v

let peek c = if c.p >= c.limit then raise (Bad "truncated") else Char.code c.code.[c.p]

let skip c n =
  if c.p + n > c.limit then raise (Bad "truncated");
  c.p <- c.p + n

let i32 c =
  let a = u8 c in
  let b = u8 c in
  let d = u8 c in
  let e = u8 c in
  let v = a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24) in
  if v >= 0x80000000 then v - 0x100000000 else v

let i8 c =
  let v = u8 c in
  if v >= 0x80 then v - 0x100 else v

type prefixes = {
  opsize : bool;  (* 0x66 *)
  addrsize : bool;  (* 0x67 *)
  rep : bool;  (* 0xF3 *)
  repn : bool;  (* 0xF2 *)
  notrack : bool;  (* 0x3E (DS segment override reused by CET) *)
  rex_w : bool;
}

(* Memory-operand summary extracted from ModRM/SIB: the reg/extension field
   and, for the bare disp32 form, the displacement (for GOT-slot targets). *)
type modrm_info = { reg_field : int; is_mem : bool; bare_disp : int option }

let parse_modrm c =
  let m = u8 c in
  let md = m lsr 6 in
  let reg_field = (m lsr 3) land 7 in
  let rm = m land 7 in
  if md = 3 then { reg_field; is_mem = false; bare_disp = None }
  else begin
    let bare = ref None in
    (if rm = 4 then begin
       let sib = u8 c in
       let sib_base = sib land 7 in
       if md = 0 && sib_base = 5 then skip c 4 (* disp32, indexed: not bare *)
     end
     else if md = 0 && rm = 5 then bare := Some (i32 c));
    (match md with
    | 1 -> skip c 1
    | 2 -> skip c 4
    | _ -> ());
    { reg_field; is_mem = true; bare_disp = !bare }
  end

(* Skip an immediate whose size follows the 'z' rule (2 with 0x66, else 4). *)
let skip_imm_z c pfx = skip c (if pfx.opsize then 2 else 4)

let decode_two_byte arch c pfx =
  let op = u8 c in
  match op with
  | 0x05 when arch = Arch.X64 -> Other (* syscall *)
  | 0x0B -> Other (* ud2 *)
  | 0x1E ->
    (* F3 0F 1E FA/FB are ENDBR64/ENDBR32; other forms are reserved NOPs. *)
    if pfx.rep && peek c = 0xFA then begin
      skip c 1;
      Endbr64
    end
    else if pfx.rep && peek c = 0xFB then begin
      skip c 1;
      Endbr32
    end
    else begin
      ignore (parse_modrm c);
      Other
    end
  | 0x1F ->
    ignore (parse_modrm c);
    Other (* multi-byte NOP *)
  | _ when op >= 0x40 && op <= 0x4F ->
    ignore (parse_modrm c);
    Other (* cmovcc *)
  | _ when op >= 0x80 && op <= 0x8F ->
    (* jcc rel32 *)
    if pfx.opsize then raise (Bad "jcc rel16");
    let rel = i32 c in
    Jcc_direct rel
  | _ when op >= 0x90 && op <= 0x9F ->
    ignore (parse_modrm c);
    Other (* setcc *)
  | 0xA2 -> Other (* cpuid *)
  | 0xAF ->
    ignore (parse_modrm c);
    Other (* imul *)
  | 0xB6 | 0xB7 | 0xBE | 0xBF ->
    ignore (parse_modrm c);
    Other (* movzx / movsx *)
  | 0xC8 | 0xC9 | 0xCA | 0xCB | 0xCC | 0xCD | 0xCE | 0xCF -> Other (* bswap *)
  | _ -> raise (Bad (Printf.sprintf "two-byte opcode 0f %02x" op))

let decode_one_byte arch c pfx =
  let x86 = arch = Arch.X86 in
  let op = u8 c in
  let modrm_only () =
    ignore (parse_modrm c);
    Other
  in
  match op with
  | _ when op < 0x40 && op land 7 <= 5 && op <> 0x0F ->
    (* add/or/adc/sbb/and/sub/xor/cmp families *)
    (match op land 7 with
    | 0 | 1 | 2 | 3 -> modrm_only ()
    | 4 ->
      skip c 1;
      Other
    | 5 ->
      skip_imm_z c pfx;
      Other
    | _ -> assert false)
  | 0x06 | 0x07 | 0x0E | 0x16 | 0x17 | 0x1E | 0x1F ->
    if x86 then Other (* push/pop segment *) else raise (Bad "seg push in 64-bit")
  | 0x27 | 0x2F | 0x37 | 0x3F ->
    if x86 then Other (* daa/das/aaa/aas *) else raise (Bad "bcd op in 64-bit")
  | _ when op >= 0x40 && op <= 0x4F ->
    if x86 then Other (* inc/dec reg *) else raise (Bad "stray rex")
  | _ when op >= 0x50 && op <= 0x5F -> Other (* push/pop reg *)
  | 0x60 | 0x61 -> if x86 then Other else raise (Bad "pusha in 64-bit")
  | 0x62 -> if x86 then modrm_only () else raise (Bad "bound/evex")
  | 0x63 -> modrm_only () (* arpl (x86) / movsxd (x64) *)
  | 0x68 ->
    if pfx.opsize then begin
      skip c 2;
      Other
    end
    else begin
      let v = i32 c in
      if x86 then Addr_ref (v land 0xFFFFFFFF) else Other
    end
  | 0x69 ->
    ignore (parse_modrm c);
    skip_imm_z c pfx;
    Other
  | 0x6A ->
    skip c 1;
    Other
  | 0x6B ->
    ignore (parse_modrm c);
    skip c 1;
    Other
  | 0x6C | 0x6D | 0x6E | 0x6F -> Other (* ins/outs *)
  | _ when op >= 0x70 && op <= 0x7F ->
    let rel = i8 c in
    Jcc_direct rel
  | 0x80 ->
    ignore (parse_modrm c);
    skip c 1;
    Other
  | 0x81 ->
    ignore (parse_modrm c);
    skip_imm_z c pfx;
    Other
  | 0x82 ->
    if x86 then begin
      ignore (parse_modrm c);
      skip c 1;
      Other
    end
    else raise (Bad "op 82 in 64-bit")
  | 0x83 ->
    ignore (parse_modrm c);
    skip c 1;
    Other
  | 0x84 | 0x85 | 0x86 | 0x87 | 0x88 | 0x89 | 0x8A | 0x8B | 0x8C | 0x8E ->
    modrm_only ()
  | 0x8D ->
    (* lea: a bare-disp operand materialises a code/data address
       (RIP-relative on x86-64, absolute on x86). *)
    let m = parse_modrm c in
    (match m.bare_disp with Some d -> Addr_ref d | None -> Other)
  | 0x8F -> modrm_only () (* pop r/m *)
  | _ when op >= 0x90 && op <= 0x97 -> Other (* nop / xchg *)
  | 0x98 | 0x99 -> Other
  | 0x9A ->
    if x86 then begin
      skip c 6;
      Other (* callf ptr16:32 *)
    end
    else raise (Bad "callf in 64-bit")
  | 0x9B | 0x9C | 0x9D | 0x9E | 0x9F -> Other
  | 0xA0 | 0xA1 | 0xA2 | 0xA3 ->
    skip c (if x86 then 4 else 8);
    Other (* mov moffs *)
  | 0xA4 | 0xA5 | 0xA6 | 0xA7 -> Other
  | 0xA8 ->
    skip c 1;
    Other
  | 0xA9 ->
    skip_imm_z c pfx;
    Other
  | _ when op >= 0xAA && op <= 0xAF -> Other (* stos/lods/scas *)
  | _ when op >= 0xB0 && op <= 0xB7 ->
    skip c 1;
    Other
  | _ when op >= 0xB8 && op <= 0xBF ->
    if pfx.rex_w || pfx.opsize then begin
      skip c (if pfx.rex_w then 8 else 2);
      Other
    end
    else begin
      let v = i32 c in
      if x86 then Addr_ref (v land 0xFFFFFFFF) else Other
    end
  | 0xC0 | 0xC1 ->
    ignore (parse_modrm c);
    skip c 1;
    Other
  | 0xC2 ->
    skip c 2;
    Ret
  | 0xC3 -> Ret
  | 0xC4 | 0xC5 -> if x86 then modrm_only () else raise (Bad "vex prefix")
  | 0xC6 ->
    ignore (parse_modrm c);
    skip c 1;
    Other
  | 0xC7 ->
    ignore (parse_modrm c);
    skip_imm_z c pfx;
    Other
  | 0xC8 ->
    skip c 3;
    Other (* enter *)
  | 0xC9 -> Other (* leave *)
  | 0xCA ->
    skip c 2;
    Ret
  | 0xCB -> Ret
  | 0xCC -> Other (* int3 *)
  | 0xCD ->
    skip c 1;
    Other
  | 0xCE -> if x86 then Other else raise (Bad "into in 64-bit")
  | 0xCF -> Other (* iret *)
  | 0xD0 | 0xD1 | 0xD2 | 0xD3 -> modrm_only ()
  | 0xD4 | 0xD5 ->
    if x86 then begin
      skip c 1;
      Other
    end
    else raise (Bad "aam/aad in 64-bit")
  | 0xD7 -> Other
  | _ when op >= 0xD8 && op <= 0xDF -> modrm_only () (* x87 *)
  | 0xE0 | 0xE1 | 0xE2 | 0xE3 ->
    let rel = i8 c in
    Jcc_direct rel (* loopcc / jcxz *)
  | 0xE4 | 0xE5 | 0xE6 | 0xE7 ->
    skip c 1;
    Other (* in/out imm8 *)
  | 0xE8 ->
    if pfx.opsize then raise (Bad "call rel16");
    let rel = i32 c in
    Call_direct rel
  | 0xE9 ->
    if pfx.opsize then raise (Bad "jmp rel16");
    let rel = i32 c in
    Jmp_direct rel
  | 0xEA ->
    if x86 then begin
      skip c 6;
      Other
    end
    else raise (Bad "jmpf in 64-bit")
  | 0xEB ->
    let rel = i8 c in
    Jmp_direct rel
  | 0xEC | 0xED | 0xEE | 0xEF -> Other (* in/out *)
  | 0xF1 -> Other (* int1 *)
  | 0xF4 -> Halt
  | 0xF5 -> Other (* cmc *)
  | 0xF6 ->
    let m = parse_modrm c in
    if m.reg_field <= 1 then skip c 1;
    Other
  | 0xF7 ->
    let m = parse_modrm c in
    if m.reg_field <= 1 then skip_imm_z c pfx;
    Other
  | _ when op >= 0xF8 && op <= 0xFD -> Other (* clc..std *)
  | 0xFE ->
    let m = parse_modrm c in
    if m.reg_field > 1 then raise (Bad "fe group");
    Other
  | 0xFF ->
    let m = parse_modrm c in
    (* For the bare-disp32 memory form, [m.bare_disp] carries the raw
       displacement: absolute slot on x86, RIP-relative on x64.  The caller
       resolves it once the instruction length is known. *)
    (match m.reg_field with
    | 0 | 1 -> Other (* inc/dec r/m *)
    | 2 -> Call_indirect { goto = m.bare_disp }
    | 3 -> if x86 then Other else raise (Bad "callf m in 64-bit")
    | 4 -> Jmp_indirect { notrack = pfx.notrack; goto = m.bare_disp }
    | 5 -> if x86 then Other else raise (Bad "jmpf m in 64-bit")
    | 6 -> Other (* push r/m *)
    | _ -> raise (Bad "ff /7"))
  | 0x0F | 0x26 | 0x2E | 0x36 | 0x3E | 0x64 | 0x65 | 0x66 | 0x67 | 0xF0 | 0xF2 | 0xF3 ->
    (* Normally consumed before dispatch; reachable only when a legacy
       prefix follows REX (hardware would ignore the REX).  Reject. *)
    raise (Bad "legacy prefix after REX")
  | _ -> raise (Bad (Printf.sprintf "opcode %02x" op))

let decode arch code ~base ~off =
  let limit = String.length code in
  if off < 0 || off >= limit then Error "offset out of range"
  else begin
    let c = { code; limit; p = off } in
    let vaddr = base + off in
    try
      let opsize = ref false
      and addrsize = ref false
      and rep = ref false
      and repn = ref false
      and notrack = ref false
      and rex_w = ref false in
      let rec prefixes n =
        if n > 14 then raise (Bad "prefix overflow");
        match peek c with
        | 0x66 ->
          skip c 1;
          opsize := true;
          prefixes (n + 1)
        | 0x67 ->
          skip c 1;
          addrsize := true;
          prefixes (n + 1)
        | 0xF3 ->
          skip c 1;
          rep := true;
          prefixes (n + 1)
        | 0xF2 ->
          skip c 1;
          repn := true;
          prefixes (n + 1)
        | 0xF0 ->
          skip c 1;
          prefixes (n + 1)
        | 0x3E ->
          skip c 1;
          notrack := true;
          prefixes (n + 1)
        | 0x26 | 0x2E | 0x36 | 0x64 | 0x65 ->
          skip c 1;
          prefixes (n + 1)
        | b when arch = Arch.X64 && b >= 0x40 && b <= 0x4F ->
          skip c 1;
          rex_w := b land 8 <> 0;
          (* REX must be last before the opcode. *)
          ()
        | _ -> ()
      in
      prefixes 0;
      let pfx =
        {
          opsize = !opsize;
          addrsize = !addrsize;
          rep = !rep;
          repn = !repn;
          notrack = !notrack;
          rex_w = !rex_w;
        }
      in
      if pfx.addrsize then raise (Bad "address-size prefix unsupported");
      let raw_kind =
        if peek c = 0x0F then begin
          skip c 1;
          decode_two_byte arch c pfx
        end
        else decode_one_byte arch c pfx
      in
      let len = c.p - off in
      let next = vaddr + len in
      let resolve_slot d = match arch with Arch.X86 -> d | Arch.X64 -> next + d in
      let kind =
        match raw_kind with
        | Call_direct rel -> Call_direct (next + rel)
        | Jmp_direct rel -> Jmp_direct (next + rel)
        | Jcc_direct rel -> Jcc_direct (next + rel)
        | Call_indirect { goto = Some d } -> Call_indirect { goto = Some (resolve_slot d) }
        | Jmp_indirect { notrack; goto = Some d } ->
          Jmp_indirect { notrack; goto = Some (resolve_slot d) }
        | Addr_ref d ->
          (* On x86-64 the only Addr_ref producer is RIP-relative lea;
             on x86 all producers carry absolute operands. *)
          Addr_ref (resolve_slot d)
        | k -> k
      in
      Ok { addr = vaddr; len; kind }
    with
    | Bad msg -> Error msg
  end

(* ---- Allocation-free scratch core ------------------------------------ *)

(* [scan] is the hot-loop twin of [decode]: the same instruction walk, but
   results land in a caller-owned mutable scratch record and classification
   is an int tag — no cursor, no prefix refs, no [Ok]/[ins]/constructor
   blocks.  [decode] above is deliberately left untouched as the
   byte-at-a-time differential-testing oracle; test_prescan.ml pins the two
   to exact agreement (success, length, kind) on random bytes. *)

let tag_other = 0
let tag_endbr64 = 1
let tag_endbr32 = 2
let tag_call_direct = 3
let tag_jmp_direct = 4
let tag_jcc_direct = 5
let tag_call_indirect = 6
let tag_jmp_indirect = 7
let tag_ret = 8
let tag_halt = 9
let tag_addr_ref = 10

type scratch = {
  mutable s_addr : int;  (* virtual address of the scanned instruction *)
  mutable s_len : int;
  mutable s_tag : int;
  mutable s_target : int;  (* payload of direct/addr-ref/goto tags *)
  mutable s_has_target : bool;  (* indirect tags: [goto] present *)
  mutable s_notrack : bool;
  (* walk state *)
  mutable s_pos : int;
  mutable s_limit : int;
  (* modrm result slots (valid right after [scan_modrm]) *)
  mutable s_mreg : int;
  mutable s_mbare : bool;
  mutable s_mdisp : int;
}

let scratch () =
  {
    s_addr = 0;
    s_len = 0;
    s_tag = tag_other;
    s_target = 0;
    s_has_target = false;
    s_notrack = false;
    s_pos = 0;
    s_limit = 0;
    s_mreg = 0;
    s_mbare = false;
    s_mdisp = 0;
  }

let scratch_addr s = s.s_addr
let scratch_len s = s.s_len
let scratch_tag s = s.s_tag
let scratch_target s = s.s_target

(* Constant exception: raising it allocates nothing. *)
exception Scan_fail

let sc_u8 s code =
  if s.s_pos >= s.s_limit then raise_notrace Scan_fail;
  let v = Char.code (String.unsafe_get code s.s_pos) in
  s.s_pos <- s.s_pos + 1;
  v

let sc_peek s code =
  if s.s_pos >= s.s_limit then raise_notrace Scan_fail;
  Char.code (String.unsafe_get code s.s_pos)

let sc_skip s n =
  if s.s_pos + n > s.s_limit then raise_notrace Scan_fail;
  s.s_pos <- s.s_pos + n

let sc_i32 s code =
  let a = sc_u8 s code in
  let b = sc_u8 s code in
  let d = sc_u8 s code in
  let e = sc_u8 s code in
  let v = a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24) in
  if v >= 0x80000000 then v - 0x100000000 else v

let sc_i8 s code =
  let v = sc_u8 s code in
  if v >= 0x80 then v - 0x100 else v

(* Prefix flags, bit-packed (mirrors the [prefixes] record). *)
let pf_opsize = 1
let pf_rep = 2
let pf_rexw = 4
let pf_notrack = 8

let scan_modrm s code =
  let m = sc_u8 s code in
  let md = m lsr 6 in
  s.s_mreg <- (m lsr 3) land 7;
  s.s_mbare <- false;
  if md <> 3 then begin
    let rm = m land 7 in
    (if rm = 4 then begin
       let sib = sc_u8 s code in
       if md = 0 && sib land 7 = 5 then sc_skip s 4
     end
     else if md = 0 && rm = 5 then begin
       s.s_mdisp <- sc_i32 s code;
       s.s_mbare <- true
     end);
    match md with 1 -> sc_skip s 1 | 2 -> sc_skip s 4 | _ -> ()
  end

let sc_skip_imm_z s pfx = sc_skip s (if pfx land pf_opsize <> 0 then 2 else 4)

(* Sets [s_tag]/[s_target]/[s_has_target]; direct targets are still
   relative here (resolved by [scan] once the length is known). *)
let scan_two_byte arch s code pfx =
  let op = sc_u8 s code in
  if op = 0x05 && arch = Arch.X64 then s.s_tag <- tag_other
  else if op = 0x0B then s.s_tag <- tag_other
  else if op = 0x1E then
    if pfx land pf_rep <> 0 && sc_peek s code = 0xFA then begin
      sc_skip s 1;
      s.s_tag <- tag_endbr64
    end
    else if pfx land pf_rep <> 0 && sc_peek s code = 0xFB then begin
      sc_skip s 1;
      s.s_tag <- tag_endbr32
    end
    else begin
      scan_modrm s code;
      s.s_tag <- tag_other
    end
  else if op = 0x1F then begin
    scan_modrm s code;
    s.s_tag <- tag_other
  end
  else if op >= 0x40 && op <= 0x4F then begin
    scan_modrm s code;
    s.s_tag <- tag_other
  end
  else if op >= 0x80 && op <= 0x8F then begin
    if pfx land pf_opsize <> 0 then raise_notrace Scan_fail;
    s.s_target <- sc_i32 s code;
    s.s_tag <- tag_jcc_direct
  end
  else if op >= 0x90 && op <= 0x9F then begin
    scan_modrm s code;
    s.s_tag <- tag_other
  end
  else if op = 0xA2 then s.s_tag <- tag_other
  else if op = 0xAF then begin
    scan_modrm s code;
    s.s_tag <- tag_other
  end
  else if op = 0xB6 || op = 0xB7 || op = 0xBE || op = 0xBF then begin
    scan_modrm s code;
    s.s_tag <- tag_other
  end
  else if op >= 0xC8 && op <= 0xCF then s.s_tag <- tag_other
  else raise_notrace Scan_fail

let scan_one_byte arch s code pfx =
  let x86 = arch = Arch.X86 in
  let op = sc_u8 s code in
  let modrm_only () =
    scan_modrm s code;
    s.s_tag <- tag_other
  in
  let other () = s.s_tag <- tag_other in
  if op < 0x40 && op land 7 <= 5 && op <> 0x0F then begin
    match op land 7 with
    | 0 | 1 | 2 | 3 -> modrm_only ()
    | 4 ->
      sc_skip s 1;
      other ()
    | 5 ->
      sc_skip_imm_z s pfx;
      other ()
    | _ -> assert false
  end
  else
    match op with
    | 0x06 | 0x07 | 0x0E | 0x16 | 0x17 | 0x1E | 0x1F ->
      if x86 then other () else raise_notrace Scan_fail
    | 0x27 | 0x2F | 0x37 | 0x3F -> if x86 then other () else raise_notrace Scan_fail
    | _ when op >= 0x40 && op <= 0x4F ->
      if x86 then other () else raise_notrace Scan_fail
    | _ when op >= 0x50 && op <= 0x5F -> other ()
    | 0x60 | 0x61 -> if x86 then other () else raise_notrace Scan_fail
    | 0x62 -> if x86 then modrm_only () else raise_notrace Scan_fail
    | 0x63 -> modrm_only ()
    | 0x68 ->
      if pfx land pf_opsize <> 0 then begin
        sc_skip s 2;
        other ()
      end
      else begin
        let v = sc_i32 s code in
        if x86 then begin
          s.s_target <- v land 0xFFFFFFFF;
          s.s_tag <- tag_addr_ref
        end
        else other ()
      end
    | 0x69 ->
      scan_modrm s code;
      sc_skip_imm_z s pfx;
      other ()
    | 0x6A ->
      sc_skip s 1;
      other ()
    | 0x6B ->
      scan_modrm s code;
      sc_skip s 1;
      other ()
    | 0x6C | 0x6D | 0x6E | 0x6F -> other ()
    | _ when op >= 0x70 && op <= 0x7F ->
      s.s_target <- sc_i8 s code;
      s.s_tag <- tag_jcc_direct
    | 0x80 ->
      scan_modrm s code;
      sc_skip s 1;
      other ()
    | 0x81 ->
      scan_modrm s code;
      sc_skip_imm_z s pfx;
      other ()
    | 0x82 ->
      if x86 then begin
        scan_modrm s code;
        sc_skip s 1;
        other ()
      end
      else raise_notrace Scan_fail
    | 0x83 ->
      scan_modrm s code;
      sc_skip s 1;
      other ()
    | 0x84 | 0x85 | 0x86 | 0x87 | 0x88 | 0x89 | 0x8A | 0x8B | 0x8C | 0x8E ->
      modrm_only ()
    | 0x8D ->
      scan_modrm s code;
      if s.s_mbare then begin
        s.s_target <- s.s_mdisp;
        s.s_tag <- tag_addr_ref
      end
      else other ()
    | 0x8F -> modrm_only ()
    | _ when op >= 0x90 && op <= 0x97 -> other ()
    | 0x98 | 0x99 -> other ()
    | 0x9A ->
      if x86 then begin
        sc_skip s 6;
        other ()
      end
      else raise_notrace Scan_fail
    | 0x9B | 0x9C | 0x9D | 0x9E | 0x9F -> other ()
    | 0xA0 | 0xA1 | 0xA2 | 0xA3 ->
      sc_skip s (if x86 then 4 else 8);
      other ()
    | 0xA4 | 0xA5 | 0xA6 | 0xA7 -> other ()
    | 0xA8 ->
      sc_skip s 1;
      other ()
    | 0xA9 ->
      sc_skip_imm_z s pfx;
      other ()
    | _ when op >= 0xAA && op <= 0xAF -> other ()
    | _ when op >= 0xB0 && op <= 0xB7 ->
      sc_skip s 1;
      other ()
    | _ when op >= 0xB8 && op <= 0xBF ->
      if pfx land (pf_rexw lor pf_opsize) <> 0 then begin
        sc_skip s (if pfx land pf_rexw <> 0 then 8 else 2);
        other ()
      end
      else begin
        let v = sc_i32 s code in
        if x86 then begin
          s.s_target <- v land 0xFFFFFFFF;
          s.s_tag <- tag_addr_ref
        end
        else other ()
      end
    | 0xC0 | 0xC1 ->
      scan_modrm s code;
      sc_skip s 1;
      other ()
    | 0xC2 ->
      sc_skip s 2;
      s.s_tag <- tag_ret
    | 0xC3 -> s.s_tag <- tag_ret
    | 0xC4 | 0xC5 -> if x86 then modrm_only () else raise_notrace Scan_fail
    | 0xC6 ->
      scan_modrm s code;
      sc_skip s 1;
      other ()
    | 0xC7 ->
      scan_modrm s code;
      sc_skip_imm_z s pfx;
      other ()
    | 0xC8 ->
      sc_skip s 3;
      other ()
    | 0xC9 -> other ()
    | 0xCA ->
      sc_skip s 2;
      s.s_tag <- tag_ret
    | 0xCB -> s.s_tag <- tag_ret
    | 0xCC -> other ()
    | 0xCD ->
      sc_skip s 1;
      other ()
    | 0xCE -> if x86 then other () else raise_notrace Scan_fail
    | 0xCF -> other ()
    | 0xD0 | 0xD1 | 0xD2 | 0xD3 -> modrm_only ()
    | 0xD4 | 0xD5 ->
      if x86 then begin
        sc_skip s 1;
        other ()
      end
      else raise_notrace Scan_fail
    | 0xD7 -> other ()
    | _ when op >= 0xD8 && op <= 0xDF -> modrm_only ()
    | 0xE0 | 0xE1 | 0xE2 | 0xE3 ->
      s.s_target <- sc_i8 s code;
      s.s_tag <- tag_jcc_direct
    | 0xE4 | 0xE5 | 0xE6 | 0xE7 ->
      sc_skip s 1;
      other ()
    | 0xE8 ->
      if pfx land pf_opsize <> 0 then raise_notrace Scan_fail;
      s.s_target <- sc_i32 s code;
      s.s_tag <- tag_call_direct
    | 0xE9 ->
      if pfx land pf_opsize <> 0 then raise_notrace Scan_fail;
      s.s_target <- sc_i32 s code;
      s.s_tag <- tag_jmp_direct
    | 0xEA ->
      if x86 then begin
        sc_skip s 6;
        other ()
      end
      else raise_notrace Scan_fail
    | 0xEB ->
      s.s_target <- sc_i8 s code;
      s.s_tag <- tag_jmp_direct
    | 0xEC | 0xED | 0xEE | 0xEF -> other ()
    | 0xF1 -> other ()
    | 0xF4 -> s.s_tag <- tag_halt
    | 0xF5 -> other ()
    | 0xF6 ->
      scan_modrm s code;
      if s.s_mreg <= 1 then sc_skip s 1;
      other ()
    | 0xF7 ->
      scan_modrm s code;
      if s.s_mreg <= 1 then sc_skip_imm_z s pfx;
      other ()
    | _ when op >= 0xF8 && op <= 0xFD -> other ()
    | 0xFE ->
      scan_modrm s code;
      if s.s_mreg > 1 then raise_notrace Scan_fail;
      other ()
    | 0xFF -> (
      scan_modrm s code;
      match s.s_mreg with
      | 0 | 1 -> other ()
      | 2 ->
        s.s_tag <- tag_call_indirect;
        s.s_has_target <- s.s_mbare;
        if s.s_mbare then s.s_target <- s.s_mdisp
      | 3 -> if x86 then other () else raise_notrace Scan_fail
      | 4 ->
        s.s_tag <- tag_jmp_indirect;
        s.s_has_target <- s.s_mbare;
        if s.s_mbare then s.s_target <- s.s_mdisp
      | 5 -> if x86 then other () else raise_notrace Scan_fail
      | 6 -> other ()
      | _ -> raise_notrace Scan_fail)
    | _ ->
      (* Includes legacy prefixes reached after REX, exactly like [decode]. *)
      raise_notrace Scan_fail

let scan arch (s : scratch) code ~limit ~base ~off =
  if limit < 0 || limit > String.length code then
    invalid_arg "Decoder.scan: limit out of range";
  if off < 0 || off >= limit then false
  else begin
    s.s_pos <- off;
    s.s_limit <- limit;
    s.s_tag <- tag_other;
    s.s_target <- 0;
    s.s_has_target <- false;
    s.s_notrack <- false;
    s.s_addr <- base + off;
    try
      (* Prefix loop (flag bits instead of refs); REX stops it. *)
      let pfx = ref 0 in
      let n = ref 0 in
      let stop = ref false in
      while not !stop do
        if !n > 14 then raise_notrace Scan_fail;
        (match sc_peek s code with
        | 0x66 ->
          sc_skip s 1;
          pfx := !pfx lor pf_opsize
        | 0x67 ->
          sc_skip s 1;
          (* address-size prefix: unsupported downstream, matching [decode]'s
             post-prefix rejection *)
          raise_notrace Scan_fail
        | 0xF3 ->
          sc_skip s 1;
          pfx := !pfx lor pf_rep
        | 0xF2 -> sc_skip s 1
        | 0xF0 -> sc_skip s 1
        | 0x3E ->
          sc_skip s 1;
          pfx := !pfx lor pf_notrack;
          s.s_notrack <- true
        | 0x26 | 0x2E | 0x36 | 0x64 | 0x65 -> sc_skip s 1
        | b when arch = Arch.X64 && b >= 0x40 && b <= 0x4F ->
          sc_skip s 1;
          if b land 8 <> 0 then pfx := !pfx lor pf_rexw;
          stop := true
        | _ -> stop := true);
        if not !stop then incr n
      done;
      if sc_peek s code = 0x0F then begin
        sc_skip s 1;
        scan_two_byte arch s code !pfx
      end
      else scan_one_byte arch s code !pfx;
      s.s_len <- s.s_pos - off;
      (* Resolve direct/RIP-relative payloads against the end address. *)
      let next = base + s.s_pos in
      let tag = s.s_tag in
      if tag = tag_call_direct || tag = tag_jmp_direct || tag = tag_jcc_direct
      then s.s_target <- next + s.s_target
      else if
        (tag = tag_call_indirect || tag = tag_jmp_indirect) && s.s_has_target
        && arch = Arch.X64
      then s.s_target <- next + s.s_target
      else if tag = tag_addr_ref && arch = Arch.X64 then
        s.s_target <- next + s.s_target;
      true
    with Scan_fail -> false
  end

let scratch_ins (s : scratch) =
  let kind =
    if s.s_tag = tag_other then Other
    else if s.s_tag = tag_endbr64 then Endbr64
    else if s.s_tag = tag_endbr32 then Endbr32
    else if s.s_tag = tag_call_direct then Call_direct s.s_target
    else if s.s_tag = tag_jmp_direct then Jmp_direct s.s_target
    else if s.s_tag = tag_jcc_direct then Jcc_direct s.s_target
    else if s.s_tag = tag_call_indirect then
      Call_indirect { goto = (if s.s_has_target then Some s.s_target else None) }
    else if s.s_tag = tag_jmp_indirect then
      Jmp_indirect
        { notrack = s.s_notrack; goto = (if s.s_has_target then Some s.s_target else None) }
    else if s.s_tag = tag_ret then Ret
    else if s.s_tag = tag_halt then Halt
    else Addr_ref s.s_target
  in
  { addr = s.s_addr; len = s.s_len; kind }

let kind_to_string = function
  | Endbr64 -> "endbr64"
  | Endbr32 -> "endbr32"
  | Call_direct t -> Printf.sprintf "call 0x%x" t
  | Jmp_direct t -> Printf.sprintf "jmp 0x%x" t
  | Jcc_direct t -> Printf.sprintf "jcc 0x%x" t
  | Call_indirect { goto = Some g } -> Printf.sprintf "call [0x%x]" g
  | Call_indirect { goto = None } -> "call <ind>"
  | Jmp_indirect { notrack; goto = Some g } ->
    Printf.sprintf "%sjmp [0x%x]" (if notrack then "notrack " else "") g
  | Jmp_indirect { notrack; goto = None } ->
    Printf.sprintf "%sjmp <ind>" (if notrack then "notrack " else "")
  | Ret -> "ret"
  | Halt -> "hlt"
  | Addr_ref a -> Printf.sprintf "addr-ref 0x%x" a
  | Other -> "other"
