(** Table-driven x86 / x86-64 instruction length decoder and classifier.

    This is the disassembler front-end used by the linear sweep (§IV-B of the
    paper).  It decodes legacy prefixes, REX (x86-64), one- and two-byte
    opcode maps, ModRM/SIB and displacement/immediate fields — enough to
    measure every instruction the synthetic compiler emits plus the common
    encodings around them — and classifies each instruction into the
    categories the FunSeeker algorithm cares about. *)

type kind =
  | Endbr64
  | Endbr32
  | Call_direct of int  (** absolute target virtual address *)
  | Jmp_direct of int
  | Jcc_direct of int
  | Call_indirect of { goto : int option }
      (** [goto] is the absolute slot address for the bare-disp32 memory form
          (GOT slot of a PLT stub); [None] otherwise. *)
  | Jmp_indirect of { notrack : bool; goto : int option }
  | Ret
  | Halt
  | Addr_ref of int
      (** a code-address materialisation: [lea r, \[rip+d\]] (x86-64) or a
          32-bit immediate load/push (x86) whose operand the caller may
          treat as a potential code pointer *)
  | Other

type ins = { addr : int; len : int; kind : kind }

val decode :
  Arch.t -> string -> base:int -> off:int -> (ins, string) result
(** [decode arch code ~base ~off] decodes the instruction at byte offset
    [off] of section contents [code], whose first byte lives at virtual
    address [base].  Absolute targets of direct branches are computed from
    the instruction address.  Returns [Error _] on bytes outside the decoded
    subset or on truncation; the linear sweep then resynchronises at
    [off + 1] exactly as the paper prescribes. *)

val kind_to_string : kind -> string

(** {1 Allocation-free scratch core}

    [scan] is the hot-loop twin of [decode]: the same instruction walk over
    the same opcode subset, but the result lands in a caller-owned mutable
    {!scratch} record and classification is an int tag, so a successful scan
    allocates nothing.  [decode] stays as the byte-at-a-time oracle; the two
    are pinned to exact agreement by differential tests. *)

type scratch
(** Mutable decode result slots, reused across calls.  Not thread-safe;
    allocate one per domain/loop. *)

val scratch : unit -> scratch

val scan : Arch.t -> scratch -> string -> limit:int -> base:int -> off:int -> bool
(** [scan arch s code ~limit ~base ~off] decodes the instruction at [off]
    (reading no byte at or past [limit]) into [s].  Returns [false] where
    [decode] returns [Error _] (and when [off >= limit]).  Raises
    [Invalid_argument] if [limit] is outside [0 .. String.length code]. *)

val scratch_addr : scratch -> int
(** Virtual address of the last successfully scanned instruction. *)

val scratch_len : scratch -> int
val scratch_tag : scratch -> int

val scratch_target : scratch -> int
(** Resolved absolute target/slot/ref payload — meaningful for the direct
    tags and [tag_addr_ref] always, and for the indirect tags only when the
    instruction had a bare-disp32 memory operand (cf. {!scratch_ins}). *)

val scratch_ins : scratch -> ins
(** Materialise the last scan as a [decode]-style record (allocates). *)

(** Tag constants for {!scratch_tag}. *)

val tag_other : int
val tag_endbr64 : int
val tag_endbr32 : int
val tag_call_direct : int
val tag_jmp_direct : int
val tag_jcc_direct : int
val tag_call_indirect : int
val tag_jmp_indirect : int
val tag_ret : int
val tag_halt : int
val tag_addr_ref : int
