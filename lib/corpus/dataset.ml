module Options = Cet_compiler.Options
module Ir = Cet_compiler.Ir
module Link = Cet_compiler.Link

type binary = {
  suite : string;
  program : string;
  config : Options.t;
  lang : Ir.lang;
  stripped : string;
  unstripped : string;
  truth : (string * int) list;
}

type plan = {
  plan_seed : int;
  plan_configs : Options.t list;
  items : (Profile.t * int) array;  (* (scaled profile, program index) *)
}

let plan ?(profiles = Profile.all) ?(configs = Options.all_grid) ~seed ~scale () =
  let items =
    List.concat_map
      (fun profile ->
        let profile = Profile.scaled scale profile in
        List.init profile.Profile.programs (fun index -> (profile, index)))
      profiles
  in
  { plan_seed = seed; plan_configs = configs; items = Array.of_list items }

let length plan = Array.length plan.items
let binaries plan = Array.length plan.items * List.length plan.plan_configs

let nth_impl plan k =
  let profile, index = plan.items.(k) in
  let ir = Generator.program ~seed:plan.plan_seed ~profile ~index in
  List.map
    (fun config ->
      let res = Link.link config ir in
      {
        suite = profile.Profile.suite;
        program = ir.Ir.prog_name;
        config;
        lang = ir.Ir.lang;
        stripped = Cet_elf.Writer.write ~strip:true res.image;
        unstripped = Cet_elf.Writer.write res.image;
        truth = res.truth;
      })
    plan.plan_configs

(* Corpus construction dominates harness wall-clock alongside the
   identification phases, so it gets its own span. *)
let nth plan k =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"corpus.build" (fun () -> nth_impl plan k)
  else nth_impl plan k

let iter ?profiles ?configs ~seed ~scale f =
  let plan = plan ?profiles ?configs ~seed ~scale () in
  for k = 0 to length plan - 1 do
    List.iter f (nth plan k)
  done

let count ?(profiles = Profile.all) ?(configs = Options.all_grid) ~scale () =
  List.fold_left
    (fun acc p -> acc + (Profile.scaled scale p).Profile.programs * List.length configs)
    0 profiles
