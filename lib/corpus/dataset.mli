(** Dataset builder: the 24-configuration grid over the three suites
    (§III-A), streamed binary by binary so evaluation never holds the whole
    corpus in memory.

    Each program's IR is generated once (the "source code") and compiled
    under every configuration, exactly as the paper builds its 8,136
    binaries.  Binaries are handed to the callback as stripped ELF bytes
    plus the ground-truth entry list the unstripped counterpart would
    yield. *)

type binary = {
  suite : string;
  program : string;
  config : Cet_compiler.Options.t;
  lang : Cet_compiler.Ir.lang;
  stripped : string;  (** stripped ELF bytes — what the tools see *)
  unstripped : string;  (** symbol-bearing ELF bytes — ground-truth source *)
  truth : (string * int) list;  (** function entries, paper's corrections applied *)
}

type plan
(** An enumerable work plan over the dataset: one item per generated
    program, each materializing that program's whole configuration row.
    The plan itself holds no ELF bytes — items are built on demand by
    {!nth}, so independent workers (e.g. {!Cet_util.Domain_pool}) can
    claim item [k] without being driven by {!iter}'s closure. *)

val plan :
  ?profiles:Profile.t list ->
  ?configs:Cet_compiler.Options.t list ->
  seed:int ->
  scale:float ->
  unit ->
  plan
(** Same defaults and semantics as {!iter}: all three suites, the full
    24-point grid, [scale] shrinking program counts. *)

val length : plan -> int
(** Number of work items (programs).  Items are ordered profile-major then
    by program index — the exact traversal order of {!iter}. *)

val binaries : plan -> int
(** Total binaries the plan yields: [length plan * #configs]. *)

val nth : plan -> int -> binary list
(** Materialize work item [k]: generate program [k]'s IR once and compile
    it under every configuration, in grid order.  Pure in [(plan, k)], so
    any domain may evaluate any item; concatenating [nth plan 0 .. length
    plan - 1] reproduces the {!iter} stream exactly. *)

val iter :
  ?profiles:Profile.t list ->
  ?configs:Cet_compiler.Options.t list ->
  seed:int ->
  scale:float ->
  (binary -> unit) ->
  unit
(** Stream the dataset.  Defaults: all three suites, the full 24-point
    grid.  [scale] shrinks program and function counts for quick runs
    (1.0 = paper-sized suites).  Equivalent to folding [f] over
    [nth plan 0 .. nth plan (length plan - 1)] in order. *)

val count : ?profiles:Profile.t list -> ?configs:Cet_compiler.Options.t list ->
  scale:float -> unit -> int
(** Number of binaries [iter] will produce. *)
