let enabled = Registry.enabled
let now_ns () = Int64.to_int (Monotonic_clock.now ())

let push (s : Registry.sheet) name =
  s.stack <- { Registry.f_name = name; f_start = now_ns (); f_child = 0 } :: s.stack;
  if Journal.enabled () then Journal.record Journal.Phase_begin name

let pop (s : Registry.sheet) =
  match s.stack with
  | [] -> ()
  | fr :: rest ->
    s.stack <- rest;
    let dur = now_ns () - fr.f_start in
    let m =
      match Hashtbl.find_opt s.spans fr.f_name with
      | Some m -> m
      | None ->
        let m = { Registry.hist = Hist.create (); child_ns = 0 } in
        Hashtbl.replace s.spans fr.f_name m;
        m
    in
    Hist.add m.hist dur;
    m.child_ns <- m.child_ns + fr.f_child;
    if Journal.enabled () then Journal.record ~v:dur Journal.Phase_end fr.f_name;
    (match rest with
    | parent :: _ -> parent.f_child <- parent.f_child + dur
    | [] -> ());
    if Registry.tracing () then
      s.events <-
        {
          Registry.ev_name = fr.f_name;
          ev_depth = List.length rest;
          ev_start_ns = fr.f_start;
          ev_dur_ns = dur;
          ev_sheet = s.id;
        }
        :: s.events

let with_ ~name f =
  if not (Registry.enabled ()) then f ()
  else begin
    let s = Registry.ambient () in
    push s name;
    match f () with
    | v ->
      pop s;
      v
    | exception e ->
      pop s;
      raise e
  end

let enter ~name = if Registry.enabled () then push (Registry.ambient ()) name
let exit_ () = if Registry.enabled () then pop (Registry.ambient ())
