(** Phase spans over the monotonic clock.

    [with_ ~name f] times [f] and records the duration into the calling
    domain's private sheet under [name].  Spans nest: time spent in an
    inner span is also attributed to the enclosing span's [child_ns], so
    a report can show exclusive (self) time per phase, and the self-times
    of a nested instrumentation sum to the outermost spans' total.

    When the registry is disabled, [with_] is [f ()] after one atomic
    load — but the closure passed to it may itself allocate at the call
    site, so instrumentation on hot paths should use the guard idiom:

    {[
      let sweep arch ?(base = 0) code =
        if Span.enabled () then
          Span.with_ ~name:"disasm.sweep" (fun () -> sweep_impl arch base code)
        else sweep_impl arch base code
    ]}

    which makes the disabled path exactly two branch checks (the caller's
    and none inside) and zero allocation.

    When the {!Journal} is also enabled, every span open/close additionally
    appends a [Phase_begin]/[Phase_end] event to the domain's flight
    recorder (the end event carries the duration), so a black box captured
    at a crash shows which phases the domain was inside. *)

val enabled : unit -> bool
(** Alias of {!Registry.enabled} for guard sites. *)

val now_ns : unit -> int
(** The raw monotonic clock, nanoseconds. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** Run and time a span.  Exceptions still close the span. *)

val enter : name:string -> unit
(** Manual span begin, for regions that cannot be wrapped in a closure.
    Must be balanced by {!exit_} on the same domain. *)

val exit_ : unit -> unit
(** Close the innermost open span; no-op if none is open. *)
