(** Exporters over the registry: an aligned text report and a JSON-lines
    trace/summary writer.

    Both render the {e merged} view (all sheets folded in creation order;
    metric rows sorted by name), so output depends only on what was
    recorded, not on how the corpus was partitioned across workers.

    [timing:false] follows the harness convention for deterministic
    output: every time-derived figure renders as zero and the
    timing-dependent sections (per-worker throughput, gauges, GC) are
    omitted, leaving only call/event counts — which are deterministic in
    the dataset seed — so the report is byte-identical whatever [~jobs]
    was. *)

val self_total_ns : unit -> int
(** Sum of exclusive (self) span times over the merged registry: the
    worker busy time covered by instrumentation. *)

val render : timing:bool -> unit -> string
(** The aligned text report: phase breakdown (calls, total/self ms, mean
    and p50/p90/p99 quantiles), counters, and — when [timing] — gauges,
    per-worker throughput, and [Gc.quickstat] numbers.  Empty sections
    are omitted entirely (no bare headers), and a phase row with zero
    samples renders [-] in the mean/quantile columns instead of a
    fabricated zero. *)

val write_trace : out_channel -> unit
(** JSON-lines: one [span] object per traced event (sheet by sheet, in
    start order), then one [phase] summary per span name, then [counter]
    and [gauge] objects.  Parseable line by line. *)

val write_trace_chrome : out_channel -> unit
(** The same spans as {!write_trace} in Chrome trace-event format: a JSON
    array of complete ([ph = "X"]) events with microsecond [ts]/[dur],
    one [tid] per registry sheet — drop the file into chrome://tracing or
    Perfetto to see workers as parallel tracks.  When the {!Journal} has
    recorded diag/retry/quarantine events, each becomes an instant
    ([ph = "i"], thread scope) marker on the owning domain's track, so
    failures pin themselves onto the span timeline. *)

val openmetrics_label_escape : string -> string
(** Escape a label {e value} per the exposition format: backslash,
    double quote and line feed get escapes; everything else is verbatim. *)

val write_openmetrics : ?info:(string * string) list -> out_channel -> unit
(** Prometheus/OpenMetrics text exposition of the merged registry:
    counters as [cet_<name>_total], gauges as [cet_<name>], span
    histograms as [cet_phase_<name>_seconds] with cumulative
    power-of-two-edge [le] buckets, [_sum]/[_count], and a closing
    [# EOF].  Names are sanitized to the metric grammar ([[a-zA-Z0-9_]]
    under a [cet_] prefix).  A non-empty [info] list additionally emits a
    constant [cet_run_info{k="v",...} 1] gauge carrying run identity
    (manifest digest, seed) so scrapes are joinable with run manifests;
    label keys are used verbatim (callers pass grammar-safe keys), label
    values are escaped with {!openmetrics_label_escape}. *)
