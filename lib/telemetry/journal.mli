(** Per-domain flight recorder.

    A fixed-size ring buffer of structured events — phase begin/end (fed
    by {!Span}), diagnostics, deadline-poll slack, harness retries and
    quarantines — one ring per domain, drop-oldest.  When a binary
    crashes or a fuzz mutant escapes, the worker's last-N events are its
    black box: {!Harness.write_quarantine} and the fuzzer's crash report
    attach them, so a post-mortem sees what the domain was doing in the
    moments before the failure without re-running anything.

    The journal follows the {!Registry} guard discipline: globally
    disabled by default, and {!record} behind a disabled flag is a single
    atomic load — hot call sites guard with [if Journal.enabled () then
    Journal.record ...] so the disabled path is one branch and zero
    allocation.  Enabled recording writes into a preallocated ring slot
    (one event record allocation, no growth, no locks — the ring is
    domain-private like a metric sheet). *)

type kind =
  | Phase_begin  (** a {!Span} opened; [v] unused *)
  | Phase_end  (** a {!Span} closed; [v] is the duration in ns *)
  | Diag  (** a diagnostic was emitted; name is [domain/code] *)
  | Deadline_slack
      (** a {!Cet_util.Deadline} poll observed [v] ns of remaining budget *)
  | Retry  (** the harness is retrying a failed binary; [v] is the attempt *)
  | Quarantine  (** the harness gave up on a binary *)
  | Steal
      (** the scheduler stole an item; name is [thief<-victim] worker ids *)
  | Backoff
      (** a guarded unit backs off before a retry; [v] is the delay in ns *)
  | Breaker
      (** a circuit-breaker transition or skip; name is [group:action] *)
  | Shed  (** deadline pressure degraded a unit to the cheaper analysis *)

val kind_label : kind -> string
(** Stable kebab-case name, used by every exporter. *)

val kind_of_label : string -> kind option
(** Inverse of {!kind_label} — the reading side of the quarantine/crash
    JSONL round-trip. *)

type event = {
  j_kind : kind;
  j_name : string;  (** phase name, [domain/code], binary identity, ... *)
  j_v : int;  (** kind-specific payload; 0 when unused *)
  j_ns : int;  (** raw monotonic clock, comparable within a run *)
  j_ring : int;  (** owning ring id = the domain's {!Registry} sheet id *)
}

type ring = {
  r_id : int;
  r_cap : int;
  r_buf : event array;
  mutable r_next : int;  (** total events ever recorded; slot = next mod cap *)
}

val default_capacity : int
(** 256 events per domain. *)

(** {1 Global switch} *)

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Turn recording on.  [capacity] (default {!default_capacity}) sizes
    every ring created from then on; a domain whose ring predates a
    capacity change transparently re-registers a fresh ring on its next
    record.  Raises [Invalid_argument] when [capacity <= 0]. *)

val disable : unit -> unit

val reset : unit -> unit
(** Empty every registered ring in place. *)

(** {1 Recording} *)

val record : ?v:int -> kind -> string -> unit
(** Append one event to the calling domain's ring, dropping the oldest
    event once the ring is full.  No-op when disabled — but guard hot
    call sites with {!enabled} so the disabled path never evaluates the
    arguments. *)

(** {1 Reading} *)

val recent : ?n:int -> unit -> event list
(** The calling domain's buffered events, oldest first ([n] keeps only
    the newest [n]).  [[]] when disabled. *)

val mark : unit -> int
(** The calling domain's current event cursor (0 when disabled); pass to
    {!count_kind_since} to count events recorded after this point. *)

val count_kind_since : int -> kind -> int
(** Events of the given kind still visible in the calling domain's ring
    that were recorded at or after the given {!mark}. *)

val rings : unit -> ring list
(** Snapshot of all registered rings in id order — for exporters; call
    after worker domains have been joined. *)

val ring_events : ring -> event list
(** A ring's buffered events, oldest first. *)

val ring_create : id:int -> capacity:int -> ring
(** A fresh unregistered ring (tests). *)

val ring_record : ring -> kind:kind -> name:string -> v:int -> unit
(** Record straight into a given ring (tests). *)

val event_to_string : event -> string
(** One aligned human-readable line (no trailing newline). *)
