(** Log-scale latency histogram.

    Samples are non-negative integers (nanoseconds in practice).  Buckets
    are powers of two, so the histogram covers the full int63 range in 63
    counters with a worst-case quantile error of one octave — tight enough
    to separate a microsecond phase from a millisecond one, which is all a
    phase breakdown needs.  Exact [min]/[max]/[sum] are kept alongside, and
    quantile estimates are clamped to [[min, max]], so degenerate
    populations (single sample, all-equal samples) report exactly. *)

type t

val nbuckets : int
(** 63. *)

val bucket_of : int -> int
(** The bucket index a sample lands in: bucket [i] covers [2^i <= v <
    2^(i+1)] (0 and 1 share bucket 0; the top bucket is clamped). *)

val bucket_count : t -> int -> int
(** Samples recorded in the given bucket index. *)

val bucket_upper_bound : int -> int
(** Inclusive upper edge of a bucket: [2^(i+1)-1], with the top bucket's
    edge clamped to [max_int].  Exporters build cumulative [le] bounds
    from this. *)

val create : unit -> t
val add : t -> int -> unit
(** Record one sample; negative values are clamped to 0. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
(** Smallest recorded sample; 0 when empty. *)

val max_value : t -> int
val mean : t -> float
(** 0.0 when empty. *)

val quantile : t -> float -> int option
(** [quantile t q] estimates the [q]-quantile ([q] clamped to [0,1]);
    [None] when the histogram is empty.  The estimate is the geometric
    midpoint of the bucket holding the target rank, clamped to the exact
    observed [[min, max]] range. *)

val merge : t -> t -> unit
(** [merge into src] adds [src]'s population to [into].  Commutative and
    associative in the merged contents, so worker sheets can be folded in
    any order. *)

val reset : t -> unit
