(** The scheduler→telemetry bridge.

    {!Cet_util.Work_queue} sits below this library, so it reports through
    an observer callback instead of calling the flight recorder directly —
    the same inversion as {!Cet_util.Deadline.set_observer}.  This module
    is the standard bridge both drivers (the evaluation harness, the
    mutation fuzzer) install: scheduler events become {!Journal} entries
    and {!Registry} counters, and from the counters the OpenMetrics
    export picks them up for free. *)

val scheduler_observer : Cet_util.Work_queue.event -> unit
(** Steals, backoffs, breaker transitions and sheds are journaled (kinds
    {!Journal.Steal}, {!Journal.Backoff}, {!Journal.Breaker},
    {!Journal.Shed}) and counted under [scheduler.*]; chaos injections
    are counted only ([scheduler.chaos_*]) — they are noise by design,
    not worth ring slots.  Safe to install unconditionally: with both the
    registry and the journal disabled each event costs two atomic
    loads. *)
