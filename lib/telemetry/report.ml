let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let self_ns (m : Registry.metric) =
  let s = Hist.sum m.hist - m.child_ns in
  if s < 0 then 0 else s

let self_total_ns () =
  Hashtbl.fold (fun _ m acc -> acc + self_ns m) (Registry.merged ()).Registry.spans 0

let ms ns = float_of_int ns /. 1e6
let us ns = float_of_int ns /. 1e3

(* A sheet is a worker if the harness counted binaries on it; the main
   domain is a worker too (Domain_pool folds on it alongside the spawned
   domains). *)
let worker_sheets () =
  List.filter
    (fun s -> Registry.find_counter s "harness.binaries" > 0)
    (Registry.sheets ())

let render ~timing () =
  let buf = Buffer.create 2048 in
  let m = Registry.merged () in
  let spans = sorted_bindings m.Registry.spans in
  (* An empty phase table is noise, not information: sessions that enabled
     telemetry but recorded no spans (pure counter users) get no bare
     header and no zero self-time line. *)
  if spans <> [] then begin
    Buffer.add_string buf "TELEMETRY: phase breakdown (self = exclusive of nested spans)\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-28s %9s %11s %11s %10s %10s %10s\n" "phase" "calls"
         "total(ms)" "self(ms)" "mean(us)" "p50(us)" "p99(us)");
    (* A histogram with no samples has no mean and no quantiles: render
       [-] rather than a fabricated 0.000 (or a NaN) in those columns. *)
    let q hist p =
      match Hist.quantile hist p with
      | Some v -> Printf.sprintf "%10.3f" (us v)
      | None -> Printf.sprintf "%10s" "-"
    in
    List.iter
      (fun (name, (metric : Registry.metric)) ->
        let calls = Hist.count metric.hist in
        if calls = 0 then
          Buffer.add_string buf
            (Printf.sprintf "  %-28s %9d %11.3f %11.3f %10s %10s %10s\n" name 0
               0.0 0.0 "-" "-" "-")
        else if timing then
          Buffer.add_string buf
            (Printf.sprintf "  %-28s %9d %11.3f %11.3f %10.3f %s %s\n" name
               calls
               (ms (Hist.sum metric.hist))
               (ms (self_ns metric))
               (us (int_of_float (Hist.mean metric.hist)))
               (q metric.hist 0.5) (q metric.hist 0.99))
        else
          Buffer.add_string buf
            (Printf.sprintf "  %-28s %9d %11.3f %11.3f %10.3f %10.3f %10.3f\n" name
               calls 0.0 0.0 0.0 0.0 0.0))
      spans;
    let self_sum =
      Hashtbl.fold (fun _ metric acc -> acc + self_ns metric) m.Registry.spans 0
    in
    Buffer.add_string buf
      (Printf.sprintf "  phase self-time sum: %.3f ms (worker busy time covered by spans)\n"
         (if timing then ms self_sum else 0.0))
  end;
  let counters = sorted_bindings m.Registry.counters in
  if counters <> [] then begin
    Buffer.add_string buf "COUNTERS\n";
    List.iter
      (fun (name, (c : Registry.counter)) ->
        Buffer.add_string buf (Printf.sprintf "  %-38s %12d\n" name c.n))
      counters
  end;
  if timing then begin
    let gauges = sorted_bindings m.Registry.gauges in
    if gauges <> [] then begin
      Buffer.add_string buf "GAUGES\n";
      List.iter
        (fun (name, (g : Registry.gauge)) ->
          Buffer.add_string buf (Printf.sprintf "  %-38s %12.3f\n" name g.g))
        gauges
    end;
    (match worker_sheets () with
    | [] -> ()
    | workers ->
      Buffer.add_string buf "WORKERS\n";
      List.iteri
        (fun i s ->
          let binaries = Registry.find_counter s "harness.binaries" in
          let busy =
            Hashtbl.fold (fun _ metric acc -> acc + self_ns metric) s.Registry.spans 0
          in
          let rate =
            if busy = 0 then 0.0 else float_of_int binaries /. (float_of_int busy /. 1e9)
          in
          Buffer.add_string buf
            (Printf.sprintf "  worker %-2d %8d binaries %10.3f s busy %10.1f binaries/s\n"
               i binaries
               (float_of_int busy /. 1e9)
               rate))
        workers);
    let gc = Gc.quick_stat () in
    Buffer.add_string buf
      (Printf.sprintf
         "GC minor/major collections: %d/%d  minor words: %.0f  promoted: %.0f  heap words: %d\n"
         gc.Gc.minor_collections gc.Gc.major_collections gc.Gc.minor_words
         gc.Gc.promoted_words gc.Gc.heap_words)
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON-lines trace                                                   *)
(* ------------------------------------------------------------------ *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let write_trace oc =
  let sheets = Registry.sheets () in
  Printf.fprintf oc "{\"type\":\"meta\",\"sheets\":%d}\n" (List.length sheets);
  List.iter
    (fun (s : Registry.sheet) ->
      List.iter
        (fun (e : Registry.event) ->
          Printf.fprintf oc
            "{\"type\":\"span\",\"sheet\":%d,\"name\":%s,\"depth\":%d,\"start_ns\":%d,\"dur_ns\":%d}\n"
            e.ev_sheet (json_string e.ev_name) e.ev_depth e.ev_start_ns e.ev_dur_ns)
        (List.rev s.events))
    sheets;
  let m = Registry.merged () in
  List.iter
    (fun (name, (metric : Registry.metric)) ->
      let p q = match Hist.quantile metric.hist q with Some v -> v | None -> 0 in
      Printf.fprintf oc
        "{\"type\":\"phase\",\"name\":%s,\"calls\":%d,\"total_ns\":%d,\"self_ns\":%d,\"min_ns\":%d,\"max_ns\":%d,\"p50_ns\":%d,\"p99_ns\":%d}\n"
        (json_string name) (Hist.count metric.hist) (Hist.sum metric.hist)
        (self_ns metric) (Hist.min_value metric.hist) (Hist.max_value metric.hist)
        (p 0.5) (p 0.99))
    (sorted_bindings m.Registry.spans);
  List.iter
    (fun (name, (c : Registry.counter)) ->
      Printf.fprintf oc "{\"type\":\"counter\",\"name\":%s,\"value\":%d}\n"
        (json_string name) c.n)
    (sorted_bindings m.Registry.counters);
  List.iter
    (fun (name, (g : Registry.gauge)) ->
      Printf.fprintf oc "{\"type\":\"gauge\",\"name\":%s,\"value\":%.6f}\n"
        (json_string name) g.g)
    (sorted_bindings m.Registry.gauges)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event format                                          *)
(* ------------------------------------------------------------------ *)

(* One complete ("ph":"X") event per recorded span, timestamps and
   durations in microseconds as the format requires, one tid per sheet so
   Perfetto lays workers out as parallel tracks.  Emitted as a plain JSON
   array — the simplest of the two container layouts chrome://tracing
   accepts. *)
let write_trace_chrome oc =
  output_string oc "[";
  let first = ref true in
  let sep () = if !first then first := false else output_string oc ",\n" in
  List.iter
    (fun (s : Registry.sheet) ->
      List.iter
        (fun (e : Registry.event) ->
          sep ();
          Printf.fprintf oc
            "{\"name\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d}"
            (json_string e.ev_name)
            (float_of_int e.ev_start_ns /. 1e3)
            (float_of_int e.ev_dur_ns /. 1e3)
            e.ev_sheet)
        (List.rev s.events))
    (Registry.sheets ());
  (* Failure-shaped journal events become instant markers on the same
     timeline (same tid as the domain's span track), so Perfetto shows a
     diag/retry/quarantine pin at the moment it happened. *)
  List.iter
    (fun (r : Journal.ring) ->
      List.iter
        (fun (e : Journal.event) ->
          match e.Journal.j_kind with
          | Journal.Diag | Journal.Retry | Journal.Quarantine
          | Journal.Backoff | Journal.Breaker | Journal.Shed ->
            sep ();
            Printf.fprintf oc
              "{\"name\":%s,\"ph\":\"i\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"s\":\"t\"}"
              (json_string
                 (Journal.kind_label e.Journal.j_kind ^ ":" ^ e.Journal.j_name))
              (float_of_int e.Journal.j_ns /. 1e3)
              e.Journal.j_ring
          | Journal.Phase_begin | Journal.Phase_end | Journal.Deadline_slack
          | Journal.Steal ->
            ())
        (Journal.ring_events r))
    (Journal.rings ());
  output_string oc "]\n"

(* ------------------------------------------------------------------ *)
(* OpenMetrics text exposition                                        *)
(* ------------------------------------------------------------------ *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; registry names use
   dots and dashes, which all map to '_' under a stable "cet_" prefix. *)
let metric_name raw =
  "cet_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      raw

let seconds ns = float_of_int ns /. 1e9

(* Label values live inside double quotes in the exposition format, which
   gives backslash, double-quote and line-feed escapes — and nothing
   else — their own syntax. *)
let openmetrics_label_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_openmetrics ?(info = []) oc =
  let m = Registry.merged () in
  (* The run-identity info gauge first: constant 1, all content in the
     labels (digest, seed, ...), the Prometheus idiom for joinable
     metadata — a scrape and a run manifest sharing the digest label are
     the same run. *)
  if info <> [] then begin
    Printf.fprintf oc "# HELP cet_run_info Run identity labels.\n";
    Printf.fprintf oc "# TYPE cet_run_info gauge\n";
    Printf.fprintf oc "cet_run_info{%s} 1\n"
      (String.concat ","
         (List.map
            (fun (k, v) ->
              Printf.sprintf "%s=\"%s\"" k (openmetrics_label_escape v))
            info))
  end;
  List.iter
    (fun (name, (c : Registry.counter)) ->
      let n = metric_name name in
      Printf.fprintf oc "# HELP %s Registry counter %s.\n" n name;
      Printf.fprintf oc "# TYPE %s counter\n" n;
      Printf.fprintf oc "%s_total %d\n" n c.n)
    (sorted_bindings m.Registry.counters);
  List.iter
    (fun (name, (g : Registry.gauge)) ->
      let n = metric_name name in
      Printf.fprintf oc "# HELP %s Registry gauge %s.\n" n name;
      Printf.fprintf oc "# TYPE %s gauge\n" n;
      Printf.fprintf oc "%s %.6f\n" n g.g)
    (sorted_bindings m.Registry.gauges);
  List.iter
    (fun (name, (metric : Registry.metric)) ->
      let h = metric.Registry.hist in
      let n = metric_name ("phase_" ^ name ^ "_seconds") in
      Printf.fprintf oc "# HELP %s Span durations for phase %s.\n" n name;
      Printf.fprintf oc "# TYPE %s histogram\n" n;
      Printf.fprintf oc "# UNIT %s seconds\n" n;
      (* Power-of-two ns edges become seconds-valued [le] bounds; emit
         cumulative counts up to the last occupied bucket, then +Inf. *)
      let last =
        let l = ref (-1) in
        for i = 0 to Hist.nbuckets - 1 do
          if Hist.bucket_count h i > 0 then l := i
        done;
        !l
      in
      let cum = ref 0 in
      for i = 0 to last do
        cum := !cum + Hist.bucket_count h i;
        Printf.fprintf oc "%s_bucket{le=\"%.9g\"} %d\n" n
          (seconds (Hist.bucket_upper_bound i))
          !cum
      done;
      Printf.fprintf oc "%s_bucket{le=\"+Inf\"} %d\n" n (Hist.count h);
      Printf.fprintf oc "%s_sum %.9f\n" n (seconds (Hist.sum h));
      Printf.fprintf oc "%s_count %d\n" n (Hist.count h))
    (sorted_bindings m.Registry.spans);
  output_string oc "# EOF\n"
