type counter = { mutable n : int }
type gauge = { mutable g : float }
type metric = { hist : Hist.t; mutable child_ns : int }

type event = {
  ev_name : string;
  ev_depth : int;
  ev_start_ns : int;
  ev_dur_ns : int;
  ev_sheet : int;
}

type frame = { f_name : string; f_start : int; mutable f_child : int }

type sheet = {
  id : int;
  spans : (string, metric) Hashtbl.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  mutable events : event list;
  mutable stack : frame list;
}

let enabled_flag = Atomic.make false
let trace_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let tracing () = Atomic.get trace_flag

let enable ?(trace = false) () =
  Atomic.set trace_flag trace;
  Atomic.set enabled_flag true

let disable () =
  Atomic.set enabled_flag false;
  Atomic.set trace_flag false

(* Sheet registration is the only shared mutable state; it is touched once
   per domain (plus once per reset/report), so a mutex is fine.  Recording
   always goes through the domain-private sheet and never locks. *)
let lock = Mutex.create ()
let all_sheets : sheet list ref = ref []
let next_id = Atomic.make 0

let create () =
  {
    id = Atomic.fetch_and_add next_id 1;
    spans = Hashtbl.create 32;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    events = [];
    stack = [];
  }

let registered_sheet () =
  let s = create () in
  Mutex.protect lock (fun () -> all_sheets := s :: !all_sheets);
  s

let dls_key = Domain.DLS.new_key registered_sheet
let ambient () = Domain.DLS.get dls_key

let sheets () =
  Mutex.protect lock (fun () ->
      List.sort (fun a b -> compare a.id b.id) !all_sheets)

let clear_sheet s =
  Hashtbl.reset s.spans;
  Hashtbl.reset s.counters;
  Hashtbl.reset s.gauges;
  s.events <- [];
  s.stack <- []

let reset () = Mutex.protect lock (fun () -> List.iter clear_sheet !all_sheets)

let merge into src =
  Hashtbl.iter
    (fun name (c : counter) ->
      match Hashtbl.find_opt into.counters name with
      | Some d -> d.n <- d.n + c.n
      | None -> Hashtbl.replace into.counters name { n = c.n })
    src.counters;
  Hashtbl.iter
    (fun name (g : gauge) ->
      match Hashtbl.find_opt into.gauges name with
      | Some d -> if g.g > d.g then d.g <- g.g
      | None -> Hashtbl.replace into.gauges name { g = g.g })
    src.gauges;
  Hashtbl.iter
    (fun name (m : metric) ->
      match Hashtbl.find_opt into.spans name with
      | Some d ->
        Hist.merge d.hist m.hist;
        d.child_ns <- d.child_ns + m.child_ns
      | None ->
        let d = { hist = Hist.create (); child_ns = m.child_ns } in
        Hist.merge d.hist m.hist;
        Hashtbl.replace into.spans name d)
    src.spans;
  into.events <- src.events @ into.events

let merged () = List.fold_left (fun acc s -> merge acc s; acc) (create ()) (sheets ())

let count ?(n = 1) name =
  if enabled () then begin
    let s = ambient () in
    match Hashtbl.find_opt s.counters name with
    | Some c -> c.n <- c.n + n
    | None -> Hashtbl.replace s.counters name { n }
  end

let gauge_set name v =
  if enabled () then begin
    let s = ambient () in
    match Hashtbl.find_opt s.gauges name with
    | Some g -> g.g <- v
    | None -> Hashtbl.replace s.gauges name { g = v }
  end

let find_counter s name =
  match Hashtbl.find_opt s.counters name with Some c -> c.n | None -> 0

let span_names s =
  Hashtbl.fold (fun name _ acc -> name :: acc) s.spans [] |> List.sort compare
