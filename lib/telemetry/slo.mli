(** Latency objectives over per-(tool,config) histograms.

    The harness observes one end-to-end latency sample per (tool, config,
    binary) into a per-domain sheet of {!Hist} histograms; at the end of
    a run [evaluate --slo "tool:p99<=50ms"] merges the sheets and checks
    each objective, exiting non-zero on breach.  This is the admission /
    SLO module the future [cetd] daemon inherits (ROADMAP).

    Same guard discipline as {!Registry}: disabled by default, and
    {!observe} behind a disabled flag is one atomic load — call sites
    guard with [if Slo.enabled () then Slo.observe ...] so the disabled
    path is a single branch with zero allocation. *)

(** {1 Objectives} *)

type stat =
  | P of float  (** quantile in (0, 1]; [P 0.99] is p99 *)
  | Max

type objective = {
  o_tool : string;
  o_config : string option;
      (** [None] aggregates every config of the tool; [Some c] matches
          the exact config string. *)
  o_stat : stat;
  o_limit_ns : int;
  o_raw : string;  (** the spec as the user wrote it, for rendering *)
}

val parse : string -> (objective, string) result
(** Parse ["TOOL:pNN<=LIMIT"] / ["TOOL:max<=LIMIT"] /
    ["TOOL/CONFIG:pNN<=LIMIT"], with LIMIT a float suffixed [ns], [us],
    [ms] or [s] — e.g. ["funseeker:p99<=50ms"].  Errors carry a message
    naming the bad component. *)

(** {1 Observation} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Empty every registered sheet in place. *)

val observe : tool:string -> config:string -> int -> unit
(** Record one latency sample in nanoseconds against (tool, config) in
    the calling domain's sheet.  No-op when disabled — guard hot call
    sites with {!enabled}.  Negative samples clamp to 0. *)

val merged : unit -> ((string * string) * Hist.t) list
(** All domains' sheets folded into one view, sorted by (tool, config);
    independent of worker partitioning (histogram merge commutes). *)

(** {1 Checking} *)

type verdict = {
  v_objective : objective;
  v_count : int;  (** samples matched *)
  v_actual_ns : int;  (** measured statistic; -1 when no samples matched *)
  v_ok : bool;
}

val check : objective list -> verdict list
(** One verdict per objective, in input order.  An objective whose key
    matched no samples is a breach ([v_ok = false]) — a typo'd tool name
    must not green-light the run. *)

val breached : verdict list -> bool

val render : verdict list -> string
(** Human-readable verdict table (trailing newline included). *)
