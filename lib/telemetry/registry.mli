(** Lock-free-per-domain metric registry.

    Mirrors the evaluation harness's Tables accumulator pattern: every
    domain that records anything owns a private {!sheet} (reached through
    domain-local storage, so the hot path takes no lock), and the sheets
    are merged deterministically when a report is rendered — counter and
    histogram merges are commutative sums, and every rendering sorts by
    metric name, so the merged view is independent of how work was
    partitioned across {!Cet_util.Domain_pool} workers.

    The registry is globally disabled by default.  Disabled, every
    recording entry point is a single atomic load and a branch — no
    allocation, no clock read — so instrumented hot paths cost nothing in
    normal runs (the [funseeker.full] bench budget is < 2%). *)

type counter = { mutable n : int }
type gauge = { mutable g : float }

type metric = {
  hist : Hist.t;  (** span durations, ns *)
  mutable child_ns : int;
      (** time spent in nested spans across all executions; the span's
          exclusive (self) time is [Hist.sum hist - child_ns] *)
}

type event = {
  ev_name : string;
  ev_depth : int;  (** 0 for a top-level span *)
  ev_start_ns : int;  (** raw monotonic clock, comparable within a run *)
  ev_dur_ns : int;
  ev_sheet : int;  (** owning sheet id *)
}

type frame = { f_name : string; f_start : int; mutable f_child : int }

type sheet = {
  id : int;
  spans : (string, metric) Hashtbl.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  mutable events : event list;  (** newest first; only filled when tracing *)
  mutable stack : frame list;  (** open spans, innermost first *)
}

(** {1 Global switch} *)

val enabled : unit -> bool
val tracing : unit -> bool

val enable : ?trace:bool -> unit -> unit
(** Turn recording on ([trace] additionally buffers one {!event} per
    completed span for the JSON-lines exporter).  Call before spawning
    worker domains. *)

val disable : unit -> unit

val reset : unit -> unit
(** Clear every registered sheet in place (registrations survive, so
    domain-local sheets keep working after a reset). *)

(** {1 Sheets} *)

val ambient : unit -> sheet
(** The calling domain's private sheet, created and registered on first
    use. *)

val create : unit -> sheet
(** A fresh unregistered sheet (merge targets, tests). *)

val sheets : unit -> sheet list
(** Snapshot of all registered sheets in creation order.  Call after
    worker domains have been joined. *)

val merge : sheet -> sheet -> unit
(** [merge into src]: add [src]'s counters, gauges (pointwise max), span
    populations and events to [into]. *)

val merged : unit -> sheet
(** All registered sheets folded, in creation order, into a fresh sheet. *)

(** {1 Recording} *)

val count : ?n:int -> string -> unit
(** Bump a named counter on the ambient sheet ([n] defaults to 1).  No-op
    when disabled. *)

val gauge_set : string -> float -> unit
(** Set a named gauge on the ambient sheet.  Gauges merge by max.  No-op
    when disabled. *)

val find_counter : sheet -> string -> int
(** 0 when absent. *)

val span_names : sheet -> string list
(** Sorted names of recorded spans. *)
