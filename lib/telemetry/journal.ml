type kind =
  | Phase_begin
  | Phase_end
  | Diag
  | Deadline_slack
  | Retry
  | Quarantine
  | Steal
  | Backoff
  | Breaker
  | Shed

let kind_label = function
  | Phase_begin -> "phase-begin"
  | Phase_end -> "phase-end"
  | Diag -> "diag"
  | Deadline_slack -> "deadline-slack"
  | Retry -> "retry"
  | Quarantine -> "quarantine"
  | Steal -> "steal"
  | Backoff -> "backoff"
  | Breaker -> "breaker"
  | Shed -> "shed"

let all_kinds =
  [
    Phase_begin;
    Phase_end;
    Diag;
    Deadline_slack;
    Retry;
    Quarantine;
    Steal;
    Backoff;
    Breaker;
    Shed;
  ]

let kind_of_label s = List.find_opt (fun k -> kind_label k = s) all_kinds

type event = {
  j_kind : kind;
  j_name : string;
  j_v : int;
  j_ns : int;
  j_ring : int;
}

type ring = {
  r_id : int;
  r_cap : int;
  r_buf : event array;
  mutable r_next : int;  (** total events ever recorded; slot = next mod cap *)
}

let dummy_event =
  { j_kind = Phase_begin; j_name = ""; j_v = 0; j_ns = 0; j_ring = -1 }

let default_capacity = 256
let enabled_flag = Atomic.make false
let capacity_cell = Atomic.make default_capacity
let enabled () = Atomic.get enabled_flag

let enable ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Journal.enable: capacity must be positive";
  Atomic.set capacity_cell capacity;
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

(* Ring registration mirrors the metric registry: rings are created once
   per domain (plus once after a capacity change) under a mutex, and
   recording always goes through the domain-private ring with no lock. *)
let lock = Mutex.create ()
let all_rings : ring list ref = ref []

let ring_create ~id ~capacity =
  {
    r_id = id;
    r_cap = capacity;
    r_buf = Array.make capacity dummy_event;
    r_next = 0;
  }

let registered_ring () =
  (* The ring id is the domain's metric-sheet id, so journal events and
     phase spans share a [tid] in the exported traces. *)
  let r =
    ring_create ~id:(Registry.ambient ()).Registry.id
      ~capacity:(Atomic.get capacity_cell)
  in
  Mutex.protect lock (fun () -> all_rings := r :: !all_rings);
  r

let dls_key = Domain.DLS.new_key registered_ring

let ambient () =
  let r = Domain.DLS.get dls_key in
  if r.r_cap = Atomic.get capacity_cell then r
  else begin
    (* The capacity changed since this domain's ring was created (tests
       re-enable with a different size): replace the registration. *)
    Mutex.protect lock (fun () ->
        all_rings := List.filter (fun r' -> r' != r) !all_rings);
    let fresh = registered_ring () in
    Domain.DLS.set dls_key fresh;
    fresh
  end

let rings () =
  Mutex.protect lock (fun () ->
      List.sort (fun a b -> compare a.r_id b.r_id) !all_rings)

let reset () =
  Mutex.protect lock (fun () -> List.iter (fun r -> r.r_next <- 0) !all_rings)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let ring_record r ~kind ~name ~v =
  let e =
    { j_kind = kind; j_name = name; j_v = v; j_ns = now_ns (); j_ring = r.r_id }
  in
  r.r_buf.(r.r_next mod r.r_cap) <- e;
  r.r_next <- r.r_next + 1

let record ?(v = 0) kind name =
  if enabled () then ring_record (ambient ()) ~kind ~name ~v

let ring_events r =
  let len = min r.r_next r.r_cap in
  let first = r.r_next - len in
  List.init len (fun i -> r.r_buf.((first + i) mod r.r_cap))

let recent ?n () =
  if not (enabled ()) then []
  else begin
    let evs = ring_events (ambient ()) in
    match n with
    | None -> evs
    | Some n ->
      let len = List.length evs in
      if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs
  end

let mark () = if enabled () then (ambient ()).r_next else 0

let count_kind_since m kind =
  if not (enabled ()) then 0
  else begin
    let r = ambient () in
    let len = min r.r_next r.r_cap in
    let first = max m (r.r_next - len) in
    let count = ref 0 in
    for i = first to r.r_next - 1 do
      if r.r_buf.(i mod r.r_cap).j_kind = kind then incr count
    done;
    !count
  end

let event_to_string e =
  Printf.sprintf "%-14s %-32s v=%-8d t=%dns" (kind_label e.j_kind) e.j_name e.j_v
    e.j_ns
