let nbuckets = 63

type t = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array;
}

let create () =
  { count = 0; sum = 0; min_v = max_int; max_v = 0; buckets = Array.make nbuckets 0 }

(* Bucket i holds samples v with 2^i <= v < 2^(i+1); 0 and 1 share bucket 0. *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 1 do
      incr b;
      v := !v lsr 1
    done;
    min (nbuckets - 1) !b
  end

let add t v =
  let v = if v < 0 then 0 else v in
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

let bucket_count t i = t.buckets.(i)

(* Inclusive upper edge of bucket i: 2^(i+1)-1, except the top bucket
   absorbs everything up to max_int (bucket_of clamps). *)
let bucket_upper_bound i =
  if i >= nbuckets - 1 then max_int else (1 lsl (i + 1)) - 1

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let quantile t q =
  if t.count = 0 then None
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    if rank >= t.count then Some t.max_v
    else begin
    let est = ref t.max_v in
    let cum = ref 0 in
    (try
       for b = 0 to nbuckets - 1 do
         cum := !cum + t.buckets.(b);
         if !cum >= rank then begin
           let lo = if b = 0 then 0 else 1 lsl b in
           let hi = bucket_upper_bound b in
           (* lo + (hi-lo)/2, not (lo+hi)/2: the latter overflows for the
              top buckets (lo + max_int wraps negative) and the estimate
              would clamp to min_v instead of max_v. *)
           est := lo + ((hi - lo) / 2);
           raise Exit
         end
       done
     with Exit -> ());
    Some (min t.max_v (max t.min_v !est))
    end
  end

let merge into src =
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.count > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end;
  Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets

let reset t =
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0;
  Array.fill t.buckets 0 nbuckets 0
