module Work_queue = Cet_util.Work_queue

let journal ?v kind name = if Journal.enabled () then Journal.record ?v kind name

let scheduler_observer (ev : Work_queue.event) =
  match ev with
  | Work_queue.Steal { thief; victim } ->
    Registry.count "scheduler.steals";
    journal Journal.Steal (Printf.sprintf "%d<-%d" thief victim)
  | Work_queue.Backoff { key; attempt; delay_ns } ->
    Registry.count "scheduler.backoffs";
    journal ~v:delay_ns Journal.Backoff (Printf.sprintf "%s#%d" key attempt)
  | Work_queue.Breaker_open { group; failures } ->
    Registry.count "scheduler.breaker_opens";
    journal ~v:failures Journal.Breaker (group ^ ":open")
  | Work_queue.Breaker_probe { group } -> journal Journal.Breaker (group ^ ":probe")
  | Work_queue.Breaker_close { group } -> journal Journal.Breaker (group ^ ":close")
  | Work_queue.Breaker_skip { group; key = _ } ->
    Registry.count "scheduler.breaker_skips";
    journal Journal.Breaker (group ^ ":skip")
  | Work_queue.Shed { key } ->
    Registry.count "scheduler.sheds";
    journal Journal.Shed key
  | Work_queue.Chaos_stall _ -> Registry.count "scheduler.chaos_stalls"
  | Work_queue.Chaos_delay _ -> Registry.count "scheduler.chaos_delays"
  | Work_queue.Chaos_fault _ -> Registry.count "scheduler.chaos_faults"
