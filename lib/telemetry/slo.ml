type stat = P of float | Max

type objective = {
  o_tool : string;
  o_config : string option;
  o_stat : stat;
  o_limit_ns : int;
  o_raw : string;
}

(* ---- Parser ---------------------------------------------------------- *)

(* Grammar (one objective per --slo occurrence):

     SPEC   ::= KEY ":" STAT "<=" LIMIT
     KEY    ::= TOOL | TOOL "/" CONFIG     (no ':' in either part)
     STAT   ::= "p" FLOAT                  (0 < FLOAT <= 100)
              | "max"
     LIMIT  ::= FLOAT UNIT                 (FLOAT >= 0)
     UNIT   ::= "ns" | "us" | "ms" | "s"

   e.g.  funseeker:p99<=50ms   fetch:max<=1s   binary/gcc-x64:p50<=2ms *)

let parse_limit s =
  let n = String.length s in
  let split i = (String.sub s 0 i, String.sub s i (n - i)) in
  let num, unit =
    let rec digits i =
      if i < n && (match s.[i] with '0' .. '9' | '.' | '+' | '-' -> true | _ -> false)
      then digits (i + 1)
      else i
    in
    split (digits 0)
  in
  match (float_of_string_opt num, unit) with
  | Some v, _ when v < 0.0 -> None
  | Some v, "ns" -> Some (int_of_float v)
  | Some v, "us" -> Some (int_of_float (v *. 1e3))
  | Some v, "ms" -> Some (int_of_float (v *. 1e6))
  | Some v, "s" -> Some (int_of_float (v *. 1e9))
  | _ -> None

let parse raw =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt raw ':' with
  | None -> err "%S: expected TOOL:STAT<=LIMIT (no ':' found)" raw
  | Some colon -> (
    let key = String.sub raw 0 colon in
    let rest = String.sub raw (colon + 1) (String.length raw - colon - 1) in
    if key = "" then err "%S: empty tool name" raw
    else
      let tool, config =
        match String.index_opt key '/' with
        | None -> (key, None)
        | Some slash ->
          ( String.sub key 0 slash,
            Some (String.sub key (slash + 1) (String.length key - slash - 1)) )
      in
      if tool = "" then err "%S: empty tool name" raw
      else
        (* split on the first "<=" *)
        let n = String.length rest in
        let rec find i =
          if i + 2 > n then None
          else if rest.[i] = '<' && rest.[i + 1] = '=' then Some i
          else find (i + 1)
        in
        match find 0 with
        | None -> err "%S: expected STAT<=LIMIT after ':'" raw
        | Some i -> (
          let stat_s = String.sub rest 0 i in
          let limit_s = String.sub rest (i + 2) (n - i - 2) in
          let stat =
            if stat_s = "max" then Some Max
            else if String.length stat_s > 1 && stat_s.[0] = 'p' then
              match float_of_string_opt (String.sub stat_s 1 (String.length stat_s - 1)) with
              | Some q when q > 0.0 && q <= 100.0 -> Some (P (q /. 100.0))
              | _ -> None
            else None
          in
          match (stat, parse_limit limit_s) with
          | None, _ -> err "%S: bad statistic %S (want pNN or max)" raw stat_s
          | _, None ->
            err "%S: bad limit %S (want FLOAT ns|us|ms|s, e.g. 50ms)" raw limit_s
          | Some o_stat, Some o_limit_ns ->
            Ok { o_tool = tool; o_config = config; o_stat; o_limit_ns; o_raw = raw }))

(* ---- Per-domain latency sheets --------------------------------------- *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

type sheet = ((string * string), Hist.t) Hashtbl.t

let lock = Mutex.create ()
let all_sheets : sheet list ref = ref []

let registered_sheet () : sheet =
  let s = Hashtbl.create 16 in
  Mutex.protect lock (fun () -> all_sheets := s :: !all_sheets);
  s

let dls_key = Domain.DLS.new_key registered_sheet

let reset () =
  Mutex.protect lock (fun () -> List.iter Hashtbl.reset !all_sheets)

let observe ~tool ~config ns =
  if enabled () then begin
    let s = Domain.DLS.get dls_key in
    let key = (tool, config) in
    let h =
      match Hashtbl.find_opt s key with
      | Some h -> h
      | None ->
        let h = Hist.create () in
        Hashtbl.replace s key h;
        h
    in
    Hist.add h (if ns < 0 then 0 else ns)
  end

(* All sheets folded into one sorted association list; merging histograms
   is commutative, so the view is independent of worker partitioning. *)
let merged () =
  let into : sheet = Hashtbl.create 16 in
  let sheets = Mutex.protect lock (fun () -> !all_sheets) in
  List.iter
    (fun (s : sheet) ->
      Hashtbl.iter
        (fun key h ->
          match Hashtbl.find_opt into key with
          | Some d -> Hist.merge d h
          | None ->
            let d = Hist.create () in
            Hist.merge d h;
            Hashtbl.replace into key d)
        s)
    sheets;
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) into []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- Objective checking ---------------------------------------------- *)

type verdict = {
  v_objective : objective;
  v_count : int;
  v_actual_ns : int;  (** -1 when no samples matched the objective's key *)
  v_ok : bool;
}

let stat_of_hist stat h =
  match stat with
  | Max -> Hist.max_value h
  | P q -> ( match Hist.quantile h q with Some v -> v | None -> 0)

let check objectives =
  let cells = merged () in
  List.map
    (fun o ->
      let matching =
        List.filter
          (fun ((tool, config), _) ->
            tool = o.o_tool
            && match o.o_config with None -> true | Some c -> c = config)
          cells
      in
      let h = Hist.create () in
      List.iter (fun (_, src) -> Hist.merge h src) matching;
      if Hist.count h = 0 then
        (* An objective nothing observed is a breach, not a silent pass: a
           typo'd tool name must not green-light the run. *)
        { v_objective = o; v_count = 0; v_actual_ns = -1; v_ok = false }
      else
        let actual = stat_of_hist o.o_stat h in
        {
          v_objective = o;
          v_count = Hist.count h;
          v_actual_ns = actual;
          v_ok = actual <= o.o_limit_ns;
        })
    objectives

let breached verdicts = List.exists (fun v -> not v.v_ok) verdicts

let ms ns = float_of_int ns /. 1e6

let render verdicts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "SLO OBJECTIVES\n";
  List.iter
    (fun v ->
      if v.v_count = 0 then
        Buffer.add_string buf
          (Printf.sprintf "  %-32s BREACH (no samples for this key)\n"
             v.v_objective.o_raw)
      else
        Buffer.add_string buf
          (Printf.sprintf "  %-32s %10.3f ms vs %10.3f ms over %6d samples  %s\n"
             v.v_objective.o_raw (ms v.v_actual_ns)
             (ms v.v_objective.o_limit_ns)
             v.v_count
             (if v.v_ok then "ok" else "BREACH")))
    verdicts;
  Buffer.contents buf
