type event =
  | Steal of { thief : int; victim : int }
  | Backoff of { key : string; attempt : int; delay_ns : int }
  | Breaker_open of { group : string; failures : int }
  | Breaker_probe of { group : string }
  | Breaker_close of { group : string }
  | Breaker_skip of { group : string; key : string }
  | Shed of { key : string }
  | Chaos_stall of { worker : int; delay_ns : int }
  | Chaos_delay of { index : int; delay_ns : int }
  | Chaos_fault of { index : int; tries : int }

module Chaos = struct
  type t = {
    c_seed : int;
    c_stall_p : float;
    c_delay_p : float;
    c_fault_p : float;
    c_max_delay_ns : int;
  }

  let default ~seed =
    {
      c_seed = seed;
      c_stall_p = 0.05;
      c_delay_p = 0.10;
      c_fault_p = 0.05;
      c_max_delay_ns = 500_000;
    }
end

module Breaker = struct
  type config = { threshold : int; cooldown : int }
  type phase = Closed | Open | Half_open

  type t = {
    b_cfg : config;
    mutable b_phase : phase;
    mutable b_failures : int;  (* consecutive failures *)
    mutable b_skips : int;  (* remaining fast-fails before a probe *)
  }

  type verdict = Allow | Probe | Skip

  let create cfg =
    if cfg.threshold <= 0 then
      invalid_arg "Work_queue.Breaker.create: threshold must be positive";
    if cfg.cooldown < 0 then
      invalid_arg "Work_queue.Breaker.create: cooldown must be non-negative";
    { b_cfg = cfg; b_phase = Closed; b_failures = 0; b_skips = 0 }

  let ask t =
    match t.b_phase with
    | Closed -> Allow
    (* A probe is already in flight: concurrent units of the group keep
       fast-failing until the probe reports. *)
    | Half_open -> Skip
    | Open ->
      if t.b_skips > 0 then begin
        t.b_skips <- t.b_skips - 1;
        Skip
      end
      else begin
        t.b_phase <- Half_open;
        Probe
      end

  let success t =
    let closed = t.b_phase = Half_open in
    t.b_phase <- Closed;
    t.b_failures <- 0;
    closed

  let failure t =
    match t.b_phase with
    | Half_open ->
      (* The recovery probe failed: reopen with a fresh cooldown. *)
      t.b_phase <- Open;
      t.b_failures <- t.b_failures + 1;
      t.b_skips <- t.b_cfg.cooldown;
      true
    | Open ->
      t.b_failures <- t.b_failures + 1;
      false
    | Closed ->
      t.b_failures <- t.b_failures + 1;
      if t.b_failures >= t.b_cfg.threshold then begin
        t.b_phase <- Open;
        t.b_skips <- t.b_cfg.cooldown;
        true
      end
      else false

  let state_name t =
    match t.b_phase with
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half-open"
end

type config = {
  jobs : int;
  cap : int;
  seed : int;
  attempts : int;
  backoff_base_ns : int;
  backoff_max_ns : int;
  breaker : Breaker.config option;
  run_seconds : float option;
  shed_fraction : float option;
  chaos : Chaos.t option;
}

let config ?jobs ?cap ?(seed = 0) ?(attempts = 2) ?(backoff_base_ns = 1_000_000)
    ?(backoff_max_ns = 50_000_000) ?breaker ?run_seconds ?shed_fraction ?chaos () =
  let jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  let cap = match cap with Some c -> c | None -> max 16 (2 * jobs) in
  {
    jobs;
    cap;
    seed;
    attempts;
    backoff_base_ns;
    backoff_max_ns;
    breaker;
    run_seconds;
    shed_fraction;
    chaos;
  }

type stats = {
  s_items : int;
  s_steals : int;
  s_retries : int;
  s_breaker_opens : int;
  s_breaker_skips : int;
  s_sheds : int;
  s_chaos_stalls : int;
  s_chaos_delays : int;
  s_chaos_faults : int;
  s_max_pending : int;
}

type t = {
  cfg : config;
  observer : (event -> unit) option;
  lock : Mutex.t;  (* guards the breaker registry *)
  breakers : (string, Breaker.t) Hashtbl.t;
  c_items : int Atomic.t;
  c_steals : int Atomic.t;
  c_retries : int Atomic.t;
  c_breaker_opens : int Atomic.t;
  c_breaker_skips : int Atomic.t;
  c_sheds : int Atomic.t;
  c_chaos_stalls : int Atomic.t;
  c_chaos_delays : int Atomic.t;
  c_chaos_faults : int Atomic.t;
  c_max_pending : int Atomic.t;
}

let create ?observer cfg =
  if cfg.jobs <= 0 then invalid_arg "Work_queue.create: jobs must be positive";
  if cfg.cap < 1 then invalid_arg "Work_queue.create: cap must be at least 1";
  if cfg.attempts < 1 then
    invalid_arg "Work_queue.create: attempts must be at least 1";
  if cfg.backoff_base_ns < 0 || cfg.backoff_max_ns < 0 then
    invalid_arg "Work_queue.create: backoff must be non-negative";
  (match cfg.run_seconds with
  | Some s when s <= 0.0 ->
    invalid_arg "Work_queue.create: run_seconds must be positive"
  | _ -> ());
  (match cfg.chaos with
  | Some c ->
    let p_ok p = p >= 0.0 && p <= 1.0 in
    if
      not
        (p_ok c.Chaos.c_stall_p && p_ok c.Chaos.c_delay_p && p_ok c.Chaos.c_fault_p)
    then invalid_arg "Work_queue.create: chaos probabilities must be in [0,1]";
    if c.Chaos.c_max_delay_ns < 0 then
      invalid_arg "Work_queue.create: chaos delay must be non-negative"
  | None -> ());
  {
    cfg;
    observer;
    lock = Mutex.create ();
    breakers = Hashtbl.create 16;
    c_items = Atomic.make 0;
    c_steals = Atomic.make 0;
    c_retries = Atomic.make 0;
    c_breaker_opens = Atomic.make 0;
    c_breaker_skips = Atomic.make 0;
    c_sheds = Atomic.make 0;
    c_chaos_stalls = Atomic.make 0;
    c_chaos_delays = Atomic.make 0;
    c_chaos_faults = Atomic.make 0;
    c_max_pending = Atomic.make 0;
  }

let stats t =
  {
    s_items = Atomic.get t.c_items;
    s_steals = Atomic.get t.c_steals;
    s_retries = Atomic.get t.c_retries;
    s_breaker_opens = Atomic.get t.c_breaker_opens;
    s_breaker_skips = Atomic.get t.c_breaker_skips;
    s_sheds = Atomic.get t.c_sheds;
    s_chaos_stalls = Atomic.get t.c_chaos_stalls;
    s_chaos_delays = Atomic.get t.c_chaos_delays;
    s_chaos_faults = Atomic.get t.c_chaos_faults;
    s_max_pending = Atomic.get t.c_max_pending;
  }

let emit t ev = match t.observer with Some f -> f ev | None -> ()

let atomic_max cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

(* ---- Backoff ---------------------------------------------------------- *)

let backoff_ns ~base_ns ~max_ns ~attempt =
  if base_ns <= 0 || max_ns <= 0 then 0
  else begin
    let shift = min (max 0 (attempt - 1)) 20 in
    min max_ns (base_ns * (1 lsl shift))
  end

let jittered_backoff_ns g ~base_ns ~max_ns ~attempt =
  let d = backoff_ns ~base_ns ~max_ns ~attempt in
  if d <= 1 then d else (d / 2) + Prng.int g ((d / 2) + 1)

let sleep_ns ns = if ns > 0 then Unix.sleepf (float_of_int ns /. 1e9)

(* ---- Per-worker deques ------------------------------------------------ *)

(* A mutex-guarded ring: the owner pops from the front (roughly preserving
   plan order, which keeps progress milestones meaningful), thieves pop
   from the back.  Work items are whole binaries or programs — milliseconds
   of work — so a lock costing tens of nanoseconds per operation is far
   below the 5% overhead budget and much simpler to reason about than a
   Chase-Lev deque. *)
module Deque = struct
  type t = {
    d_lock : Mutex.t;
    mutable d_buf : int array;
    mutable d_head : int;
    mutable d_len : int;
  }

  let create () =
    { d_lock = Mutex.create (); d_buf = Array.make 8 0; d_head = 0; d_len = 0 }

  let push_back d x =
    Mutex.protect d.d_lock (fun () ->
        let cap = Array.length d.d_buf in
        if d.d_len = cap then begin
          let buf = Array.make (2 * cap) 0 in
          for i = 0 to d.d_len - 1 do
            buf.(i) <- d.d_buf.((d.d_head + i) mod cap)
          done;
          d.d_buf <- buf;
          d.d_head <- 0
        end;
        let cap = Array.length d.d_buf in
        d.d_buf.((d.d_head + d.d_len) mod cap) <- x;
        d.d_len <- d.d_len + 1)

  let pop_front d =
    Mutex.protect d.d_lock (fun () ->
        if d.d_len = 0 then None
        else begin
          let x = d.d_buf.(d.d_head) in
          d.d_head <- (d.d_head + 1) mod Array.length d.d_buf;
          d.d_len <- d.d_len - 1;
          Some x
        end)

  let pop_back d =
    Mutex.protect d.d_lock (fun () ->
        if d.d_len = 0 then None
        else begin
          d.d_len <- d.d_len - 1;
          Some d.d_buf.((d.d_head + d.d_len) mod Array.length d.d_buf)
        end)
end

(* ---- The pool --------------------------------------------------------- *)

type error = { e_index : int; e_exn : exn; e_bt : Printexc.raw_backtrace }

(* Per-item chaos draws are keyed by (chaos seed, item index) so they are
   identical whichever worker dequeues the item — the event counts of a
   chaos run are deterministic in the seed. *)
let item_prng ~seed k = Prng.create (seed lxor ((k + 1) * 0x9E3779B9))

let sequential n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n (f 0) in
    for k = 1 to n - 1 do
      results.(k) <- f k
    done;
    results
  end

let map t n f =
  if n < 0 then invalid_arg "Work_queue.map: negative size";
  (* The runtime refuses to run more than ~128 domains at once; stay well
     under it so a generous jobs count never aborts the run. *)
  let jobs = max 1 (min (min t.cfg.jobs (max n 1)) 120) in
  let under_run_deadline g =
    match t.cfg.run_seconds with
    | None -> g ()
    | Some seconds -> Deadline.with_ ~seconds g
  in
  if n = 0 then [||]
  else if jobs <= 1 && t.cfg.chaos = None then
    under_run_deadline (fun () ->
        let r = sequential n f in
        Atomic.set t.c_items (Atomic.get t.c_items + n);
        atomic_max t.c_max_pending 1;
        r)
  else begin
    let deques = Array.init jobs (fun _ -> Deque.create ()) in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let stop = Atomic.make false in
    let pending = Atomic.make 0 in
    let submitted_all = Atomic.make false in
    let record_failure k exn bt =
      let rec go () =
        match Atomic.get failure with
        | Some { e_index; _ } when e_index <= k -> ()
        | cur ->
          if
            not
              (Atomic.compare_and_set failure cur
                 (Some { e_index = k; e_exn = exn; e_bt = bt }))
          then go ()
      in
      go ();
      Atomic.set stop true
    in
    (* One item, chaos applied: any transient dispatch fault is retried by
       the scheduler itself (bounded draws, backoff between), so the
       client work runs exactly once and results cannot depend on the
       chaos seed. *)
    let exec k =
      (match t.cfg.chaos with
      | None -> ()
      | Some c ->
        let g = item_prng ~seed:c.Chaos.c_seed k in
        let rec faults tries =
          if tries < 3 && Prng.chance g c.Chaos.c_fault_p then begin
            Atomic.incr t.c_chaos_faults;
            emit t (Chaos_fault { index = k; tries = tries + 1 });
            sleep_ns
              (backoff_ns ~base_ns:(min 50_000 c.Chaos.c_max_delay_ns)
                 ~max_ns:c.Chaos.c_max_delay_ns ~attempt:(tries + 1));
            faults (tries + 1)
          end
        in
        faults 0;
        if Prng.chance g c.Chaos.c_delay_p then begin
          let d = Prng.int g (c.Chaos.c_max_delay_ns + 1) in
          Atomic.incr t.c_chaos_delays;
          emit t (Chaos_delay { index = k; delay_ns = d });
          sleep_ns d
        end);
      match f k with
      | v ->
        results.(k) <- Some v;
        Atomic.incr t.c_items
      | exception exn -> record_failure k exn (Printexc.get_raw_backtrace ())
    in
    let maybe_stall w g =
      match t.cfg.chaos with
      | Some c when Prng.chance g c.Chaos.c_stall_p ->
        let d = Prng.int g (c.Chaos.c_max_delay_ns + 1) in
        Atomic.incr t.c_chaos_stalls;
        emit t (Chaos_stall { worker = w; delay_ns = d });
        sleep_ns d
      | _ -> ()
    in
    let try_steal w g =
      let start = Prng.int g jobs in
      let rec go i =
        if i >= jobs then None
        else begin
          let v = (start + i) mod jobs in
          if v = w then go (i + 1)
          else
            match Deque.pop_back deques.(v) with
            | Some k ->
              Atomic.incr t.c_steals;
              emit t (Steal { thief = w; victim = v });
              Some k
            | None -> go (i + 1)
        end
      in
      go 0
    in
    let take_one w g =
      match Deque.pop_front deques.(w) with
      | Some k -> Some k
      | None -> try_steal w g
    in
    let run_one w g k =
      Atomic.decr pending;
      maybe_stall w g;
      exec k
    in
    let rec worker_loop w g =
      if not (Atomic.get stop) then begin
        match take_one w g with
        | Some k ->
          run_one w g k;
          worker_loop w g
        | None ->
          if Atomic.get submitted_all && Atomic.get pending = 0 then ()
          else begin
            Domain.cpu_relax ();
            worker_loop w g
          end
      end
    in
    (* The calling domain is the producer: feed indices round-robin while
       the admission window has room, and work one item itself whenever
       the window is full — backpressure that never idles the caller. *)
    let producer_loop g =
      let next = ref 0 in
      let rr = ref 0 in
      while !next < n && not (Atomic.get stop) do
        if Atomic.get pending < t.cfg.cap then begin
          Deque.push_back deques.(!rr) !next;
          let p = Atomic.fetch_and_add pending 1 + 1 in
          atomic_max t.c_max_pending p;
          rr := (!rr + 1) mod jobs;
          incr next
        end
        else begin
          match take_one 0 g with
          | Some k -> run_one 0 g k
          | None -> Domain.cpu_relax ()
        end
      done;
      Atomic.set submitted_all true;
      worker_loop 0 g
    in
    let worker_seed w = t.cfg.seed lxor ((w + 1) * 0x85EBCA6B) in
    let domains =
      Array.init (jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              under_run_deadline (fun () ->
                  worker_loop (i + 1) (Prng.create (worker_seed (i + 1))))))
    in
    under_run_deadline (fun () -> producer_loop (Prng.create (worker_seed 0)));
    Array.iter Domain.join domains;
    match Atomic.get failure with
    | Some { e_exn; e_bt; _ } -> Printexc.raise_with_backtrace e_exn e_bt
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

(* ---- Guarded units ---------------------------------------------------- *)

type unit_failure = {
  w_attempts : int;
  w_error : exn;
  w_bt : Printexc.raw_backtrace;
  w_breaker_skip : bool;
}

type 'a guarded = { g_value : 'a; g_attempts : int; g_degraded : bool }

exception Breaker_tripped of string

let () =
  Printexc.register_printer (function
    | Breaker_tripped group ->
      Some (Printf.sprintf "Work_queue.Breaker_tripped(%s)" group)
    | _ -> None)

(* Guard retries sleep with jitter from a domain-local generator: the
   jitter changes timing only, never outcomes, so it needs no cross-run
   determinism — but it must not be shared mutable state across domains. *)
let jitter_key : Prng.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let jitter_prng t =
  let cell = Domain.DLS.get jitter_key in
  match !cell with
  | Some g -> g
  | None ->
    let g = Prng.create (t.cfg.seed lxor 0x6C62272E) in
    cell := Some g;
    g

let breaker_for t group =
  match t.cfg.breaker with
  | None -> None
  | Some cfg ->
    Some
      (Mutex.protect t.lock (fun () ->
           match Hashtbl.find_opt t.breakers group with
           | Some b -> b
           | None ->
             let b = Breaker.create cfg in
             Hashtbl.add t.breakers group b;
             b))

let guard t ~key ~group ?(retryable = fun _ -> true) work =
  let breaker = breaker_for t group in
  let ask () =
    match breaker with
    | None -> Breaker.Allow
    | Some b -> Mutex.protect t.lock (fun () -> Breaker.ask b)
  in
  let report ok =
    match breaker with
    | None -> ()
    | Some b ->
      let transition =
        Mutex.protect t.lock (fun () ->
            if ok then if Breaker.success b then `Closed else `None
            else if Breaker.failure b then `Opened b.Breaker.b_failures
            else `None)
      in
      (match transition with
      | `Closed -> emit t (Breaker_close { group })
      | `Opened failures ->
        Atomic.incr t.c_breaker_opens;
        emit t (Breaker_open { group; failures })
      | `None -> ())
  in
  match ask () with
  | Breaker.Skip ->
    Atomic.incr t.c_breaker_skips;
    emit t (Breaker_skip { group; key });
    Error
      {
        w_attempts = 0;
        w_error = Breaker_tripped group;
        w_bt = Printexc.get_callstack 0;
        w_breaker_skip = true;
      }
  | (Breaker.Allow | Breaker.Probe) as verdict ->
    if verdict = Breaker.Probe then emit t (Breaker_probe { group });
    let degraded =
      match t.cfg.shed_fraction with
      | None -> false
      | Some frac -> (
        match Deadline.remaining_fraction () with
        | Some r when r < frac ->
          Atomic.incr t.c_sheds;
          emit t (Shed { key });
          true
        | _ -> false)
    in
    let rec go attempt =
      match work ~attempt ~degraded with
      | v ->
        report true;
        Ok { g_value = v; g_attempts = attempt; g_degraded = degraded }
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        report false;
        if attempt < t.cfg.attempts && retryable e then begin
          Atomic.incr t.c_retries;
          let d =
            jittered_backoff_ns (jitter_prng t) ~base_ns:t.cfg.backoff_base_ns
              ~max_ns:t.cfg.backoff_max_ns ~attempt
          in
          emit t (Backoff { key; attempt; delay_ns = d });
          sleep_ns d;
          go (attempt + 1)
        end
        else
          Error
            { w_attempts = attempt; w_error = e; w_bt = bt; w_breaker_skip = false }
    in
    go 1
