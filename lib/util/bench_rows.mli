(** Parser and differ for the benchmark harness's BENCH_<n>.json files —
    the format bench/main.exe's [--json] emits, one
    [{"name": ..., "mean_ns": ..., "runs": ...}] object per line.

    Library form of the bin/bench_diff tool so the parser (and its
    token-boundary key matching) is unit-testable: a key-shaped token
    inside a longer key or inside a quoted value must never match. *)

type row = { name : string; mean_ns : float; runs : int }

val field : string -> string -> string option
(** [field line key] is the raw value of the top-level ["key":] field on
    [line] (trimmed, still quoted for strings), or [None].  The key is
    matched at token boundaries: the previous non-blank byte before its
    opening quote must be ['{'] or [','], or the key must open the line. *)

val unquote : string -> string
(** Strip one layer of surrounding double quotes, if present. *)

val parse_line : string -> row option
(** One benchmark row, when the line carries both [name] and a float
    [mean_ns] ([runs] defaults to 0 when absent or malformed). *)

val parse_lines : string list -> row list * string list
(** All rows in emitted order plus the list of duplicate names that were
    dropped (first occurrence of each name wins). *)

val split_version : string -> (string * int * string) option
(** Decompose a filename around its {e last} digit run:
    ["BENCH_12.json"] is [Some ("BENCH_", 12, ".json")]; [None] when the
    name has no digits. *)

val expand_range : exists:(string -> bool) -> string -> string list option
(** Expand a ["BENCH_2.json..BENCH_6.json"]-style range into the filenames
    between the two version counters (inclusive), dropping those [exists]
    rejects.  [None] when the spec has no [".."], the endpoints do not
    share a prefix/suffix around their last digit run, or the range is
    inverted. *)

type history_row = {
  h_name : string;
  h_means : float option array;  (** one slot per input file, in order *)
}

val history : row list list -> history_row list
(** Join many files' rows by name (first-appearance order): one row per
    distinct test, with [None] where a file lacks it — the
    [bench_diff --history] trajectory view. *)

val geomean_ratio : row list -> row list -> (float * int) option
(** Geometric mean of the new/old mean-time ratios over the tests present
    in both lists with positive means, plus how many such tests there
    were; [None] when no test is comparable.  The [--history] per-hop
    summary: below 1.0 the hop got faster overall. *)

type comparison = {
  c_name : string;
  c_old_ns : float;
  c_new_ns : float;
  c_pct : float;  (** percent change, positive = slower *)
}

type report = {
  compared : comparison list;  (** rows present in both files, new order *)
  regressed : int;  (** comparisons beyond [+threshold] *)
  improved : int;  (** comparisons beyond [-threshold] *)
  missing : string list;  (** names in OLD absent from NEW, old order *)
  added : string list;  (** names in NEW absent from OLD, new order *)
}

val diff : threshold:float -> row list -> row list -> report
(** [diff ~threshold old_rows new_rows].  Rows with a non-positive mean on
    either side are excluded from comparison (they cannot be meaningfully
    ratioed). *)
