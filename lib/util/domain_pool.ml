(* Thin compatibility facade: the historical fixed-pool API, now
   implemented by the work-stealing scheduler.  Callers that need
   admission control, retries, breakers, or chaos use {!Work_queue}
   directly; everyone else keeps this two-function surface. *)

let map ?jobs n f =
  if n < 0 then invalid_arg "Domain_pool.map: negative size";
  let jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  let t = Work_queue.create (Work_queue.config ~jobs ()) in
  Work_queue.map t n f

let fold ?jobs ~merge init n f =
  Array.fold_left merge init (map ?jobs n f)
