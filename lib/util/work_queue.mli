(** Resilient work-queue scheduler: the general engine behind the
    evaluation harness (and, eventually, the [cetd] daemon).

    Two layers, usable together or separately:

    {2 The pool: {!map}}

    A multi-producer Domain pool with one deque per worker and work
    stealing: the calling domain acts as the producer, feeding item
    indices round-robin into the per-worker deques, while every worker
    (the producer included) pops from the front of its own deque and
    steals from the back of a sibling's when it runs dry.  Admission is
    bounded: at most [cap] items may sit admitted-but-unstarted, and a
    full queue exerts backpressure by turning the producer into a worker
    until depth drops — the producer never blocks idle and never grows
    the queue past the cap.

    Scheduling is nondeterministic (stealing races are real races), but
    the {e result} is not: slot [k] of the returned array is written by
    exactly one worker, results are merged in index order, and a client
    folding partial accumulators over {!map}'s output gets byte-identical
    output whatever the worker count, steal pattern, or chaos seed.

    {2 The guard: {!guard}}

    Per-unit resilience for the work a pool item performs (the harness
    runs one {!guard} per binary inside one {!map} item per program):
    bounded retries with exponential backoff and jitter, a per-group
    circuit breaker, and graceful degradation ("shedding") under deadline
    pressure.

    The breaker is deterministic by construction: opening is triggered by
    consecutive-failure counts and the open→half-open transition by a
    {e count of skipped units} rather than wall-clock cooldown, so runs
    that submit the same units in the same per-group order trip the same
    breakers — the harness keys groups so that all of a group's units run
    inside a single plan item, which makes quarantine reports
    byte-identical across worker counts.

    Shedding consults {!Deadline.remaining_fraction}: when the calling
    worker's ambient deadline (armed pool-wide via [run_seconds]) has
    less than [shed_fraction] of its budget left, the guarded work runs
    in degraded mode ([~degraded:true]) — the client picks the cheaper
    analysis and records the downgrade.

    {2 Chaos}

    A seeded fault layer for soak testing: per-item slow-downs and
    transient dispatch faults (drawn from a hash of the chaos seed and
    the item index, so the draw is independent of which worker runs the
    item) and per-worker stalls.  Transient faults are injected {e
    before} the item's work function runs and retried by the scheduler
    itself, so chaos changes timing and scheduling — exercising steals,
    backoff, and the drain paths — but never results: a chaos run's
    output is byte-identical to the fault-free run. *)

(** {1 Events} *)

(** Scheduler happenings, delivered to the [observer] passed to
    {!create}.  This module sits below the telemetry library, so the
    owner of both layers (the harness, the fuzz engine) bridges events to
    the flight recorder and metric counters — the same inversion as
    {!Deadline.set_observer}.  Observers run on worker domains and must
    be domain-safe. *)
type event =
  | Steal of { thief : int; victim : int }
      (** worker [thief] took an item from the back of [victim]'s deque *)
  | Backoff of { key : string; attempt : int; delay_ns : int }
      (** attempt [attempt] of unit [key] failed retryably; the worker
          sleeps [delay_ns] before the next attempt *)
  | Breaker_open of { group : string; failures : int }
      (** [group] reached its consecutive-failure threshold (or its
          half-open probe failed) and now fast-fails new units *)
  | Breaker_probe of { group : string }
      (** an open breaker's skip budget is exhausted; this unit runs as
          the half-open probe *)
  | Breaker_close of { group : string }
      (** a half-open probe succeeded; [group] readmitted *)
  | Breaker_skip of { group : string; key : string }
      (** unit [key] was fast-failed without running *)
  | Shed of { key : string }
      (** deadline pressure: unit [key] runs in degraded mode *)
  | Chaos_stall of { worker : int; delay_ns : int }
  | Chaos_delay of { index : int; delay_ns : int }
  | Chaos_fault of { index : int; tries : int }
      (** seeded transient dispatch fault on item [index]; the scheduler
          backs off and redispatches without running the item's work *)

(** {1 Chaos configuration} *)

module Chaos : sig
  type t = {
    c_seed : int;
    c_stall_p : float;  (** per-dequeue worker-stall probability *)
    c_delay_p : float;  (** per-item slow-down probability *)
    c_fault_p : float;  (** per-item transient dispatch-fault probability *)
    c_max_delay_ns : int;  (** scale of every injected sleep *)
  }

  val default : seed:int -> t
  (** Modest fault rates (5% stalls, 10% delays, 5% transient faults)
      with sub-millisecond sleeps — enough to scramble scheduling in a
      soak without slowing it meaningfully. *)
end

(** {1 Circuit breaker} *)

module Breaker : sig
  type config = {
    threshold : int;  (** consecutive failures that open the breaker *)
    cooldown : int;  (** units fast-failed while open before a probe *)
  }

  type t
  (** One group's state.  Not domain-safe on its own; {!guard} serialises
      access under the scheduler's lock. *)

  (** What the breaker allows a new unit to do. *)
  type verdict =
    | Allow  (** closed: run normally *)
    | Probe  (** half-open: run as the recovery probe *)
    | Skip  (** open (or a probe is in flight): fast-fail *)

  val create : config -> t
  (** Fresh closed breaker.  Raises [Invalid_argument] when
      [threshold <= 0] or [cooldown < 0]. *)

  val ask : t -> verdict
  (** Consult (and advance) the state for one new unit: [Skip] also burns
      one unit of the open state's cooldown budget; the first ask after
      the budget is spent transitions to half-open and returns [Probe]. *)

  val success : t -> bool
  (** Record a unit success; returns [true] when this closed a half-open
      breaker (the probe succeeded). *)

  val failure : t -> bool
  (** Record a unit failure; returns [true] when this opened the breaker
      (threshold reached, or a half-open probe failed). *)

  val state_name : t -> string
  (** ["closed"], ["open"] or ["half-open"] — for tests and reports. *)
end

(** {1 Scheduler} *)

type config = {
  jobs : int;  (** worker domains, calling domain included *)
  cap : int;  (** admission bound: max items admitted-but-unstarted *)
  seed : int;  (** jitter, victim selection; results never depend on it *)
  attempts : int;  (** max {!guard} attempts per unit, [>= 1] *)
  backoff_base_ns : int;  (** first retry delay; doubles per attempt *)
  backoff_max_ns : int;  (** backoff ceiling *)
  breaker : Breaker.config option;  (** [None]: no circuit breaking *)
  run_seconds : float option;
      (** arm one {!Deadline} of this budget around every worker's whole
          loop — the run-wide deadline that shedding measures against *)
  shed_fraction : float option;
      (** degrade a guarded unit when the ambient deadline's
          {!Deadline.remaining_fraction} drops below this; [None] (or no
          ambient deadline) never sheds *)
  chaos : Chaos.t option;
}

val config :
  ?jobs:int ->
  ?cap:int ->
  ?seed:int ->
  ?attempts:int ->
  ?backoff_base_ns:int ->
  ?backoff_max_ns:int ->
  ?breaker:Breaker.config ->
  ?run_seconds:float ->
  ?shed_fraction:float ->
  ?chaos:Chaos.t ->
  unit ->
  config
(** Defaults: [jobs = Domain.recommended_domain_count ()], [cap = max 16
    (2 * jobs)], [seed = 0], [attempts = 2], backoff 1ms doubling to a
    50ms ceiling, no breaker, no run deadline, no shedding, no chaos. *)

type t
(** A scheduler instance: breaker registry, counters, observer.  Create
    one per run; {!map} may be called repeatedly on the same instance
    (stats accumulate). *)

val create : ?observer:(event -> unit) -> config -> t
(** Validates the config: [cap >= 1], [attempts >= 1], non-negative
    backoff, [run_seconds > 0] and probabilities in [\[0,1\]] when
    present — [Invalid_argument] otherwise. *)

(** Cumulative counters, readable at any point (atomically maintained). *)
type stats = {
  s_items : int;  (** items completed by {!map} calls *)
  s_steals : int;
  s_retries : int;  (** guard re-attempts after a backoff *)
  s_breaker_opens : int;
  s_breaker_skips : int;
  s_sheds : int;
  s_chaos_stalls : int;
  s_chaos_delays : int;
  s_chaos_faults : int;
  s_max_pending : int;  (** admission high-water mark; never exceeds [cap] *)
}

val stats : t -> stats

val map : t -> int -> (int -> 'a) -> 'a array
(** [map t n f] evaluates [f k] for [k in 0 .. n-1] across the pool and
    returns the results in index order, exactly as [Array.init n f]
    would.  If some [f k] raises, new work stops being issued, every
    worker drains, and the exception of the lowest failing index observed
    is re-raised on the calling domain — {!Domain_pool.map}'s contract,
    which that module now implements by delegating here. *)

(** {1 Guarded units} *)

(** How a guarded unit failed. *)
type unit_failure = {
  w_attempts : int;
      (** client attempts actually executed; [0] for a breaker skip *)
  w_error : exn;
  w_bt : Printexc.raw_backtrace;
  w_breaker_skip : bool;
      (** [true]: the work never ran; [w_error] is {!Breaker_tripped} *)
}

(** The work, its outcome, and what resilience machinery fired. *)
type 'a guarded = {
  g_value : 'a;
  g_attempts : int;  (** [1] when the first attempt succeeded *)
  g_degraded : bool;  (** the unit ran in shed (degraded) mode *)
}

exception Breaker_tripped of string
(** Carried in {!unit_failure.w_error} for fast-failed units; the payload
    is the group. *)

val guard :
  t ->
  key:string ->
  group:string ->
  ?retryable:(exn -> bool) ->
  (attempt:int -> degraded:bool -> 'a) ->
  ('a guarded, unit_failure) result
(** Run one unit of work with retries, breaking, and shedding.  [key]
    names the unit in events; [group] keys the circuit breaker (units of
    one group should run on one domain in a fixed order if downstream
    output must be partition-independent).  [retryable] (default: always)
    vetoes retries for permanent failures — the harness passes
    [Deadline.Expired _ -> false].  The work function receives the
    attempt number (from 1) and whether to run degraded; each attempt
    must be side-effect-free on failure (the harness evaluates into a
    fresh accumulator per attempt). *)

(** {1 Backoff arithmetic (exposed for property tests)} *)

val backoff_ns : base_ns:int -> max_ns:int -> attempt:int -> int
(** Deterministic exponential backoff: delay before the attempt after
    [attempt] — [base_ns * 2^(attempt-1)] capped at [max_ns];
    non-decreasing in [attempt], [0] when [base_ns = 0]. *)

val jittered_backoff_ns : Prng.t -> base_ns:int -> max_ns:int -> attempt:int -> int
(** {!backoff_ns} with multiplicative jitter, uniform in
    [\[delay/2, delay\]] — desynchronises retry stampedes without ever
    shortening the delay below half the deterministic schedule. *)
