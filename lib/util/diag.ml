type severity = Info | Warning | Error

type t = { severity : severity; domain : string; code : string; message : string }

let make ?(severity = Warning) ~domain ~code message =
  { severity; domain; code; message }

let makef ?severity ~domain ~code fmt =
  Printf.ksprintf (fun message -> make ?severity ~domain ~code message) fmt

let info ~domain ~code message = make ~severity:Info ~domain ~code message
let warning ~domain ~code message = make ~severity:Warning ~domain ~code message
let error ~domain ~code message = make ~severity:Error ~domain ~code message

let severity_label = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

(* Ordered so [max_severity] can fold with [max]. *)
let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let to_string d =
  Printf.sprintf "%s [%s/%s]: %s" (severity_label d.severity) d.domain d.code
    d.message

let render ds = String.concat "" (List.map (fun d -> to_string d ^ "\n") ds)

let max_severity = function
  | [] -> None
  | d :: ds ->
    Some
      (List.fold_left
         (fun acc d -> if severity_rank d.severity > severity_rank acc then d.severity else acc)
         d.severity ds)

let with_severity sev ds = List.filter (fun d -> d.severity = sev) ds
let errors ds = with_severity Error ds
let warnings ds = with_severity Warning ds
let has_errors ds = errors ds <> []

module Collector = struct
  type diag = t

  (* Newest-first internally; [list] restores chronological order. *)
  type nonrec t = { mutable items : diag list; mutable count : int }

  let create () = { items = []; count = 0 }

  (* Same layering story as [Deadline.set_observer]: the flight recorder
     lives above this module, so the driver bridges emissions to it. *)
  let observing = Atomic.make false
  let observer : (diag -> unit) ref = ref (fun _ -> ())

  let set_observer = function
    | None ->
      Atomic.set observing false;
      observer := fun _ -> ()
    | Some f ->
      observer := f;
      Atomic.set observing true

  (* A degenerate input can trip the same clamp thousands of times (one per
     section, per LSDA, ...).  Cap the retained list so diagnostics cannot
     become their own resource-exhaustion vector; the count keeps the true
     total. *)
  let cap = 256

  let add c d =
    if c.count < cap then c.items <- d :: c.items
    else if c.count = cap then
      c.items <-
        make ~severity:Warning ~domain:"diag" ~code:"truncated"
          (Printf.sprintf "diagnostic list truncated at %d entries" cap)
        :: c.items;
    c.count <- c.count + 1;
    if Atomic.get observing then !observer d

  let addf c ?severity ~domain ~code fmt =
    Printf.ksprintf (fun message -> add c (make ?severity ~domain ~code message)) fmt

  let list c = List.rev c.items
  let count c = c.count
  let is_empty c = c.count = 0
end
