(** Immutable table of disjoint half-open intervals with attached values,
    supporting O(log n) stabbing queries.  Used for function extents, LSDA
    call-site ranges, and FDE coverage lookups. *)

type 'a t

val empty : 'a t

val of_list : (int * int * 'a) list -> 'a t
(** [of_list ivs] builds a table from [(lo, hi, v)] triples denoting
    \[lo, hi).  Intervals must be disjoint (empty intervals are dropped);
    raises [Invalid_argument] on overlap. *)

val of_list_lenient : (int * int * 'a) list -> 'a t
(** Like {!of_list} but tolerant of corrupt inputs: overlapping intervals
    are resolved by keeping the first of each overlapping run in [lo]
    order (stable, hence deterministic) instead of raising.  For interval
    sets recovered from untrusted binaries — e.g. FDE extents out of a
    malformed [.eh_frame]. *)

val find : 'a t -> int -> (int * int * 'a) option
(** [find t x] returns the interval containing [x], if any. *)

val mem : 'a t -> int -> bool
val cardinal : 'a t -> int
val to_list : 'a t -> (int * int * 'a) list
(** Intervals in increasing order. *)

val iter : (int -> int -> 'a -> unit) -> 'a t -> unit
