(** A small fixed-size domain pool for indexed, embarrassingly-parallel
    work lists.

    [map ~jobs n f] evaluates [f k] for every [k] in [0 .. n-1] on up to
    [jobs] domains (including the calling one) and returns the results in
    index order, exactly as [Array.init n f] would.  Scheduling is
    dynamic — since PR 8 this is a facade over {!Work_queue}'s
    work-stealing pool with default admission settings — so uneven item
    costs balance across workers, but the result array is always in plan
    order: callers that fold partial accumulators over it are
    deterministic regardless of which domain ran which item.

    With [jobs <= 1] (or [n <= 1]) the work runs sequentially on the
    calling domain in ascending index order, with no domains spawned. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [jobs] defaults to [Domain.recommended_domain_count ()]'s value at
    call time.  If some [f k] raises, the remaining work is drained, every
    worker is joined, and the exception of the lowest failing index
    observed is re-raised (with its backtrace) on the calling domain. *)

val fold : ?jobs:int -> merge:('acc -> 'a -> 'acc) -> 'acc -> int -> (int -> 'a) -> 'acc
(** [fold ~merge init n f] is [Array.fold_left merge init (map n f)]:
    parallel map, then a left fold over the results in index order — the
    merge order (and thus the result) is independent of [jobs]. *)
