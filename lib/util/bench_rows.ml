(* Parser and differ for the benchmark harness's BENCH_<n>.json files.

   The format is exactly what bench/main.ml's write_json emits — one
   {"name": ..., "mean_ns": ..., "runs": ...} object per line — so this is
   deliberately a line-oriented scanner, not a JSON library.  What it must
   NOT do is match keys by raw substring: a key-shaped token can appear
   inside a longer key ("filename" contains "name") or inside a quoted
   value, and the old scanner in bin/bench_diff.ml silently picked those
   up, corrupting the row name and letting the regression gate compare the
   wrong tests. *)

type row = { name : string; mean_ns : float; runs : int }

(* The value of a top-level "key": field on [line], or None.

   Token boundary rule: the previous non-blank byte before the key's
   opening quote must be '{' or ',' (or the key must open the line).  That
   rejects matches inside a longer key (preceded by a letter) and inside a
   quoted value (preceded by '\\' or other string content). *)
let field line key =
  let n = String.length line in
  let tok = Printf.sprintf "\"%s\":" key in
  let tl = String.length tok in
  let boundary_before i =
    let rec prev j =
      if j < 0 then true
      else
        match line.[j] with
        | ' ' | '\t' -> prev (j - 1)
        | '{' | ',' -> true
        | _ -> false
    in
    prev (i - 1)
  in
  let rec find i =
    if i + tl > n then None
    else if String.sub line i tl = tok && boundary_before i then Some (i + tl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let rec skip j = if j < n && line.[j] = ' ' then skip (j + 1) else j in
    let start = skip start in
    let stop = ref start in
    while
      !stop < n && (match line.[!stop] with ',' | '}' | '\n' -> false | _ -> true)
    do
      incr stop
    done;
    Some (String.trim (String.sub line start (!stop - start)))

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s

let parse_line line =
  match (field line "name", field line "mean_ns") with
  | Some name, Some ns -> (
    match float_of_string_opt ns with
    | None -> None
    | Some mean_ns ->
      let runs =
        match field line "runs" with
        | Some r -> ( match int_of_string_opt r with Some v -> v | None -> 0)
        | None -> 0
      in
      Some { name = unquote name; mean_ns; runs })
  | _ -> None

let parse_lines lines =
  (* Duplicate names (an artifact of older files where the parallel-harness
     bench could emit two jobs=1 rows) keep their first occurrence. *)
  let seen = Hashtbl.create 64 in
  let rows = ref [] and dups = ref [] in
  List.iter
    (fun line ->
      match parse_line line with
      | None -> ()
      | Some r ->
        if Hashtbl.mem seen r.name then dups := r.name :: !dups
        else begin
          Hashtbl.replace seen r.name ();
          rows := r :: !rows
        end)
    lines;
  (List.rev !rows, List.rev !dups)

(* ---- History (trajectory across many files) ------------------------- *)

let is_digit c = c >= '0' && c <= '9'

(* Decompose a filename around its LAST digit run: "BENCH_12.json" ->
   ("BENCH_", 12, ".json").  The last run is the version counter in the
   harness's naming scheme; earlier digits (a directory like "v2/") stay
   in the prefix. *)
let split_version name =
  let n = String.length name in
  let rec find_end i =
    if i < 0 then None else if is_digit name.[i] then Some i else find_end (i - 1)
  in
  match find_end (n - 1) with
  | None -> None
  | Some e ->
    let rec find_start i = if i >= 0 && is_digit name.[i] then find_start (i - 1) else i + 1 in
    let st = find_start e in
    match int_of_string_opt (String.sub name st (e - st + 1)) with
    | None -> None
    | Some v -> Some (String.sub name 0 st, v, String.sub name (e + 1) (n - e - 1))

let expand_range ~exists spec =
  let n = String.length spec in
  let rec find_sep i =
    if i + 2 > n then None
    else if spec.[i] = '.' && spec.[i + 1] = '.' then Some i
    else find_sep (i + 1)
  in
  (* Use the LAST ".." so a lone ".." inside the left filename cannot split
     the range early ("a..b..c" is ambiguous either way; last wins). *)
  let rec last_sep best i =
    match find_sep i with None -> best | Some j -> last_sep (Some j) (j + 1)
  in
  match last_sep None 0 with
  | None -> None
  | Some i -> (
    let left = String.sub spec 0 i in
    let right = String.sub spec (i + 2) (n - i - 2) in
    match (split_version left, split_version right) with
    | Some (p1, lo, s1), Some (p2, hi, s2) when p1 = p2 && s1 = s2 && lo <= hi ->
      Some
        (List.filter exists
           (List.init (hi - lo + 1) (fun k ->
                Printf.sprintf "%s%d%s" p1 (lo + k) s1)))
    | _ -> None)

type history_row = { h_name : string; h_means : float option array }

let history tables =
  let nfiles = List.length tables in
  let order = ref [] in
  let idx : (string, float option array) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun fi rows ->
      List.iter
        (fun r ->
          let arr =
            match Hashtbl.find_opt idx r.name with
            | Some arr -> arr
            | None ->
              let arr = Array.make nfiles None in
              Hashtbl.replace idx r.name arr;
              order := r.name :: !order;
              arr
          in
          if arr.(fi) = None then arr.(fi) <- Some r.mean_ns)
        rows)
    tables;
  List.rev_map (fun name -> { h_name = name; h_means = Hashtbl.find idx name }) !order

(* Geometric mean of new/old ratios over the tests both lists time with a
   positive mean.  In log space so a thousand tiny ratios cannot
   underflow a running product. *)
let geomean_ratio old_rows new_rows =
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace old_tbl r.name r.mean_ns) old_rows;
  let log_sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt old_tbl r.name with
      | Some old_ns when old_ns > 0.0 && r.mean_ns > 0.0 ->
        log_sum := !log_sum +. log (r.mean_ns /. old_ns);
        incr n
      | Some _ | None -> ())
    new_rows;
  if !n = 0 then None else Some (exp (!log_sum /. float_of_int !n), !n)

type comparison = {
  c_name : string;
  c_old_ns : float;
  c_new_ns : float;
  c_pct : float;
}

type report = {
  compared : comparison list;
  regressed : int;
  improved : int;
  missing : string list;
  added : string list;
}

let diff ~threshold old_rows new_rows =
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace old_tbl r.name r.mean_ns) old_rows;
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace new_tbl r.name ()) new_rows;
  let compared = ref [] and regressed = ref 0 and improved = ref 0 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt old_tbl r.name with
      | Some old_ns when old_ns > 0.0 && r.mean_ns > 0.0 ->
        let pct = (r.mean_ns -. old_ns) /. old_ns *. 100.0 in
        if pct > threshold then incr regressed
        else if pct < -.threshold then incr improved;
        compared :=
          { c_name = r.name; c_old_ns = old_ns; c_new_ns = r.mean_ns; c_pct = pct }
          :: !compared
      | Some _ | None -> ())
    new_rows;
  let missing =
    List.filter_map
      (fun r -> if Hashtbl.mem new_tbl r.name then None else Some r.name)
      old_rows
  and added =
    List.filter_map
      (fun r -> if Hashtbl.mem old_tbl r.name then None else Some r.name)
      new_rows
  in
  {
    compared = List.rev !compared;
    regressed = !regressed;
    improved = !improved;
    missing;
    added;
  }
