(** LEB128 variable-length integer coding, as used throughout DWARF
    exception-handling data (CFI programs, LSDA tables). *)

val write_u : Buffer.t -> int -> unit
(** Append an unsigned LEB128 encoding. Requires a non-negative argument. *)

val write_s : Buffer.t -> int -> unit
(** Append a signed LEB128 encoding. *)

val read_u : string -> int -> int * int
(** [read_u s pos] decodes an unsigned LEB128 starting at [pos] and returns
    [(value, next_pos)]. Raises [Invalid_argument] on truncated input and
    on overlong encodings whose payload would not fit a non-negative OCaml
    int (63-bit word) — the shift is bounded, never wrapped. *)

val read_s : string -> int -> int * int
(** Signed counterpart of {!read_u}; rejects encodings longer than 9 bytes
    (the widest that fits a 63-bit int). *)

val size_u : int -> int
(** Encoded byte length of an unsigned value. *)
