type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

(* A recursive-descent parser over (string, position ref).  Inputs are
   single report lines — recursion depth is bounded by the writers. *)

let skip_ws s i =
  let n = String.length s in
  while
    !i < n
    && match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    incr i
  done

let expect s i c =
  if !i >= String.length s || s.[!i] <> c then
    fail !i (Printf.sprintf "expected '%c'" c);
  incr i

let hex_digit pos c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail pos "bad hex digit in \\u escape"

let utf8_add buf cp =
  (* The writers only escape below 0x20, but accept any scalar up to
     U+10FFFF: surrogate pairs are combined by the string parser below, so
     astral codepoints need the 4-byte form.  A lone surrogate (which no
     conforming writer emits) is encoded blindly in the 3-byte form —
     lenient WTF-8 rather than a hard error, good enough for reading our
     own output. *)
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string s i =
  expect s i '"';
  let n = String.length s in
  let buf = Buffer.create 16 in
  let rec go () =
    if !i >= n then fail !i "unterminated string"
    else
      match s.[!i] with
      | '"' -> incr i
      | '\\' ->
        incr i;
        if !i >= n then fail !i "unterminated escape";
        (match s.[!i] with
        | '"' -> Buffer.add_char buf '"'; incr i
        | '\\' -> Buffer.add_char buf '\\'; incr i
        | '/' -> Buffer.add_char buf '/'; incr i
        | 'b' -> Buffer.add_char buf '\b'; incr i
        | 'f' -> Buffer.add_char buf '\012'; incr i
        | 'n' -> Buffer.add_char buf '\n'; incr i
        | 'r' -> Buffer.add_char buf '\r'; incr i
        | 't' -> Buffer.add_char buf '\t'; incr i
        | 'u' ->
          if !i + 4 >= n then fail !i "truncated \\u escape";
          let h k = hex_digit (!i + k) s.[!i + k] in
          let cp = (h 1 lsl 12) lor (h 2 lsl 8) lor (h 3 lsl 4) lor h 4 in
          i := !i + 5;
          (* RFC 8259 represents astral codepoints as a UTF-16 surrogate
             pair of two \u escapes; a high surrogate followed by a low
             one combines into one scalar.  Anything else falls through
             to the lenient single-escape encoding. *)
          if
            cp >= 0xD800 && cp <= 0xDBFF
            && !i + 5 < n
            && s.[!i] = '\\'
            && s.[!i + 1] = 'u'
          then begin
            let h2 k = hex_digit (!i + k) s.[!i + k] in
            let lo = (h2 2 lsl 12) lor (h2 3 lsl 8) lor (h2 4 lsl 4) lor h2 5 in
            if lo >= 0xDC00 && lo <= 0xDFFF then begin
              utf8_add buf
                (0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00)));
              i := !i + 6
            end
            else utf8_add buf cp
          end
          else utf8_add buf cp
        | c -> fail !i (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c ->
        Buffer.add_char buf c;
        incr i;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number s i =
  let start = !i in
  let n = String.length s in
  let adv () = if !i < n then incr i in
  if !i < n && s.[!i] = '-' then adv ();
  while !i < n && match s.[!i] with '0' .. '9' -> true | _ -> false do
    adv ()
  done;
  if !i < n && s.[!i] = '.' then begin
    adv ();
    while !i < n && match s.[!i] with '0' .. '9' -> true | _ -> false do
      adv ()
    done
  end;
  if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
    adv ();
    if !i < n && (s.[!i] = '+' || s.[!i] = '-') then adv ();
    while !i < n && match s.[!i] with '0' .. '9' -> true | _ -> false do
      adv ()
    done
  end;
  if !i = start then fail start "expected a value";
  match float_of_string_opt (String.sub s start (!i - start)) with
  | Some f -> f
  | None -> fail start "malformed number"

let parse_literal s i word v =
  let n = String.length word in
  if !i + n <= String.length s && String.sub s !i n = word then begin
    i := !i + n;
    v
  end
  else fail !i (Printf.sprintf "expected '%s'" word)

let rec parse_value s i =
  skip_ws s i;
  if !i >= String.length s then fail !i "unexpected end of input"
  else
    match s.[!i] with
    | '"' -> Str (parse_string s i)
    | '{' ->
      incr i;
      skip_ws s i;
      if !i < String.length s && s.[!i] = '}' then begin
        incr i;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws s i;
          let k = parse_string s i in
          skip_ws s i;
          expect s i ':';
          let v = parse_value s i in
          fields := (k, v) :: !fields;
          skip_ws s i;
          if !i < String.length s && s.[!i] = ',' then begin
            incr i;
            members ()
          end
          else expect s i '}'
        in
        members ();
        Obj (List.rev !fields)
      end
    | '[' ->
      incr i;
      skip_ws s i;
      if !i < String.length s && s.[!i] = ']' then begin
        incr i;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value s i in
          items := v :: !items;
          skip_ws s i;
          if !i < String.length s && s.[!i] = ',' then begin
            incr i;
            elements ()
          end
          else expect s i ']'
        in
        elements ();
        List (List.rev !items)
      end
    | 't' -> parse_literal s i "true" (Bool true)
    | 'f' -> parse_literal s i "false" (Bool false)
    | 'n' -> parse_literal s i "null" Null
    | _ -> Num (parse_number s i)

let parse s =
  let i = ref 0 in
  match parse_value s i with
  | v ->
    skip_ws s i;
    if !i < String.length s then
      Error (Printf.sprintf "byte %d: trailing input" !i)
    else Ok v
  | exception Fail (pos, msg) -> Error (Printf.sprintf "byte %d: %s" pos msg)

let parse_lines s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) acc rest
      else (
        match parse line with
        | Ok v -> go (lineno + 1) (v :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 [] lines

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None
