(** Typed diagnostics for graceful degradation.

    The robust analysis entry points ({!Cet_elf.Reader.read_diag},
    [Core.Funseeker.analyze_diag], the evaluation harness) report
    recoverable trouble — clamped section bounds, skipped LSDAs, missing
    sections, exceeded deadlines — as values instead of exceptions, so one
    malformed input can degrade its own analysis without taking down a
    batch.  A diagnostic carries a {!severity}, the emitting subsystem
    ([domain]), a stable machine-readable [code], and a human message. *)

type severity =
  | Info  (** observation; the result is unaffected *)
  | Warning  (** the result was degraded (clamped, partial, filtered less) *)
  | Error  (** the result is empty or unusable for this input *)

type t = { severity : severity; domain : string; code : string; message : string }

val make : ?severity:severity -> domain:string -> code:string -> string -> t
(** [severity] defaults to [Warning]. *)

val makef :
  ?severity:severity ->
  domain:string ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a

val info : domain:string -> code:string -> string -> t
val warning : domain:string -> code:string -> string -> t
val error : domain:string -> code:string -> string -> t

val severity_label : severity -> string
val to_string : t -> string
(** ["severity [domain/code]: message"]. *)

val render : t list -> string
(** One {!to_string} line per diagnostic (with trailing newline), in order. *)

val max_severity : t list -> severity option
val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

(** Accumulates diagnostics in emission order.  Degenerate inputs can emit
    one diagnostic per corrupt structure, so the retained list is capped
    (the count is exact); see {!Collector.add}. *)
module Collector : sig
  type diag = t
  type t

  val create : unit -> t

  val add : t -> diag -> unit
  (** Record a diagnostic.  Beyond an internal cap the diagnostic is
      counted but not retained, and one [diag/truncated] marker is kept. *)

  val addf :
    t ->
    ?severity:severity ->
    domain:string ->
    code:string ->
    ('a, unit, string, unit) format4 ->
    'a

  val list : t -> diag list
  (** Retained diagnostics in emission order. *)

  val count : t -> int
  (** Total emitted, including unretained ones. *)

  val is_empty : t -> bool

  val set_observer : (diag -> unit) option -> unit
  (** Install (or with [None] remove) a global emission observer: every
      {!add} into any collector also calls it.  The driver that owns both
      layers bridges emissions to the telemetry flight recorder here.
      The unobserved path costs one atomic load; observers must be
      domain-safe. *)
end
