(** Per-domain analysis deadlines.

    A robustness guard for the analysis pipeline: the evaluation harness
    arms one deadline per binary ([evaluate --max-seconds]), and the
    long-running loops (the linear sweeps, the fuzzer's per-mutant run)
    poll {!check} periodically, so no input can hang a worker domain.

    Deadlines are ambient and domain-local — arming one in an evaluation
    worker never affects its siblings — and the disarmed fast path is a
    single atomic load, so {!check} may sit inside hot loops. *)

exception Expired of { what : string; seconds : float }
(** Raised by {!check}: [what] names the loop that noticed, [seconds] the
    armed budget. *)

val active : unit -> bool
(** Whether any domain currently has an armed deadline (one atomic load). *)

val with_ : seconds:float -> (unit -> 'a) -> 'a
(** [with_ ~seconds f] runs [f] with a deadline [seconds] from now armed
    on the calling domain.  Nesting is allowed; an inner deadline never
    extends the enclosing one.  The deadline is disarmed on exit, normal
    or exceptional.  Raises [Invalid_argument] when [seconds <= 0]. *)

val expired : unit -> bool
(** Has the calling domain's deadline passed?  [false] when none armed. *)

val remaining_fraction : unit -> float option
(** Fraction of the calling domain's armed budget still remaining,
    clamped to [\[0,1\]]; [None] when no deadline is armed.  The
    scheduler's shedding policy compares this against its
    [shed_fraction] threshold to decide when to degrade work. *)

val check : string -> unit
(** Raise {!Expired} if the calling domain's deadline has passed; no-op
    when none is armed.  The argument names the checking loop. *)

val set_observer : (string -> int -> unit) option -> unit
(** Install (or with [None] remove) a slack observer: every non-expired
    {!check} under an armed deadline calls it with the checking loop's
    name and the remaining budget in nanoseconds.  This module sits below
    the telemetry library, so the driver that owns both installs the
    flight-recorder bridge here.  The unobserved path costs one atomic
    load; observers must be domain-safe (the flight recorder is). *)
