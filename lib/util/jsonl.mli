(** A minimal JSON reader for the repo's own line-oriented reports.

    The quarantine, crash, and profile reports are JSONL written by
    hand-rolled printers ([json_escape] + [Printf]); PR 7's ["journal"]
    field made the format load-bearing, so this module gives the reader
    side: enough of RFC 8259 to round-trip everything those printers can
    emit (objects, arrays, strings with the quote/backslash/slash/control
    and [u]-hex escapes, numbers, booleans, null).  It is a test and
    tooling surface,
    not a general-purpose JSON library — no streaming, no trailing
    garbage tolerance, integer-precision numbers as [float].  [\uXXXX]
    surrogate pairs combine into one astral scalar (4-byte UTF-8); bare
    [NaN]/[Infinity] tokens are rejected as RFC 8259 requires. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** fields in document order *)

val parse : string -> (t, string) result
(** Parse one complete JSON document; the error string carries a byte
    offset.  Leading/trailing whitespace is allowed, trailing non-space
    input is an error. *)

val parse_lines : string -> (t list, string) result
(** Parse a JSONL document: one JSON value per non-empty line.  Stops at
    the first bad line, reporting its 1-based line number. *)

(** {1 Accessors} — [None] on shape mismatch, never an exception. *)

val member : string -> t -> t option
(** First field of that name in an [Obj]. *)

val str : t -> string option

val num : t -> float option

val int : t -> int option
(** [num] truncated; [None] if not integral. *)

val bool : t -> bool option

val list : t -> t list option
