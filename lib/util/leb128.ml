let write_u buf v =
  assert (v >= 0);
  let rec go v =
    let byte = v land 0x7f in
    let rest = v lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go v

let write_s buf v =
  let rec go v =
    let byte = v land 0x7f in
    let rest = v asr 7 in
    let sign_clear = byte land 0x40 = 0 in
    let done_ = (rest = 0 && sign_clear) || (rest = -1 && not sign_clear) in
    if done_ then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go v

let byte s pos =
  if pos >= String.length s then invalid_arg "Leb128: truncated input"
  else Char.code s.[pos]

(* OCaml ints hold 63 bits (bit 62 is the sign).  An overlong encoding
   whose payload shifts past that silently wraps through the sign bit, so
   both readers bound the shift: any continuation byte that would place
   payload bits at or above bit 62 — or any encoding longer than 9 bytes —
   is rejected rather than wrapped. *)
let max_shift = 56 (* the 9th byte's chunk starts here; bits 56..61 remain *)

let read_u s pos =
  let rec go acc shift pos =
    let b = byte s pos in
    let chunk = b land 0x7f in
    if shift > max_shift || (shift = max_shift && chunk lsr 6 <> 0) then
      invalid_arg "Leb128: overlong encoding"
    else
      let acc = acc lor (chunk lsl shift) in
      if b land 0x80 = 0 then (acc, pos + 1) else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos

let read_s s pos =
  let rec go acc shift pos =
    let b = byte s pos in
    let chunk = b land 0x7f in
    (* The 9th byte's chunk spans bits 56..62 and bit 62 is the sign, so
       every 7-bit chunk is representable there; only a 10th byte is not. *)
    if shift > max_shift then invalid_arg "Leb128: overlong encoding"
    else
      let acc = acc lor (chunk lsl shift) in
      let shift = shift + 7 in
      if b land 0x80 = 0 then
        let acc = if b land 0x40 <> 0 && shift < 63 then acc lor (-1 lsl shift) else acc in
        (acc, pos + 1)
      else go acc shift (pos + 1)
  in
  go 0 0 pos

let size_u v =
  let buf = Buffer.create 8 in
  write_u buf v;
  Buffer.length buf
