type 'a t = (int * int * 'a) array

let empty = [||]

let of_list ivs =
  let ivs = List.filter (fun (lo, hi, _) -> lo < hi) ivs in
  let arr = Array.of_list ivs in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) arr;
  Array.iteri
    (fun i (lo, hi, _) ->
      if i > 0 then begin
        let _, prev_hi, _ = arr.(i - 1) in
        if lo < prev_hi then invalid_arg "Itable.of_list: overlapping intervals"
      end;
      ignore (lo, hi))
    arr;
  arr

let of_list_lenient ivs =
  let ivs =
    List.filter (fun (lo, hi, _) -> lo < hi) ivs
    |> List.stable_sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  (* Keep the first interval of every overlapping run (stable sort, so the
     outcome is deterministic in the input order). *)
  let kept = ref [] in
  let last_hi = ref min_int in
  List.iter
    (fun (lo, hi, v) ->
      if lo >= !last_hi then begin
        kept := (lo, hi, v) :: !kept;
        last_hi := hi
      end)
    ivs;
  Array.of_list (List.rev !kept)

let find t x =
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let l, h, v = t.(mid) in
      if x < l then search lo mid
      else if x >= h then search (mid + 1) hi
      else Some (l, h, v)
  in
  search 0 (Array.length t)

let mem t x = find t x <> None
let cardinal = Array.length
let to_list t = Array.to_list t
let iter f t = Array.iter (fun (lo, hi, v) -> f lo hi v) t
