exception Expired of { what : string; seconds : float }

let () =
  Printexc.register_printer (function
    | Expired { what; seconds } ->
      Some (Printf.sprintf "Deadline.Expired(%s, budget %gs)" what seconds)
    | _ -> None)

(* The ambient deadline is per-domain (each evaluation worker guards its
   own binary), reached through DLS.  The global count of active deadlines
   makes the disabled path one atomic load — the same discipline as the
   telemetry registry, so sprinkling [check] into hot sweep loops costs
   nothing in normal runs. *)
type state = { until : float; budget : float }

let active_count = Atomic.make 0
let key : state option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let active () = Atomic.get active_count > 0

let with_ ~seconds f =
  if seconds <= 0.0 then invalid_arg "Deadline.with_: seconds must be positive";
  let prev = Domain.DLS.get key in
  let now = Unix.gettimeofday () in
  (* Nested deadlines never extend an enclosing one. *)
  let until =
    match prev with
    | Some p -> Float.min p.until (now +. seconds)
    | None -> now +. seconds
  in
  Domain.DLS.set key (Some { until; budget = seconds });
  Atomic.incr active_count;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr active_count;
      Domain.DLS.set key prev)
    f

let expired () =
  active ()
  &&
  match Domain.DLS.get key with
  | None -> false
  | Some s -> Unix.gettimeofday () >= s.until

let check what =
  if active () then
    match Domain.DLS.get key with
    | None -> ()
    | Some s ->
      (* >= so a budget below the clock's resolution (until == now at arm
         time) still reads as expired on the very next check. *)
      if Unix.gettimeofday () >= s.until then
        raise (Expired { what; seconds = s.budget })
