exception Expired of { what : string; seconds : float }

let () =
  Printexc.register_printer (function
    | Expired { what; seconds } ->
      Some (Printf.sprintf "Deadline.Expired(%s, budget %gs)" what seconds)
    | _ -> None)

(* The ambient deadline is per-domain (each evaluation worker guards its
   own binary), reached through DLS.  The global count of active deadlines
   makes the disabled path one atomic load — the same discipline as the
   telemetry registry, so sprinkling [check] into hot sweep loops costs
   nothing in normal runs. *)
type state = { until : float; budget : float }

let active_count = Atomic.make 0
let key : state option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let active () = Atomic.get active_count > 0

let with_ ~seconds f =
  if seconds <= 0.0 then invalid_arg "Deadline.with_: seconds must be positive";
  let prev = Domain.DLS.get key in
  let now = Unix.gettimeofday () in
  (* Nested deadlines never extend an enclosing one. *)
  let until =
    match prev with
    | Some p -> Float.min p.until (now +. seconds)
    | None -> now +. seconds
  in
  Domain.DLS.set key (Some { until; budget = seconds });
  Atomic.incr active_count;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr active_count;
      Domain.DLS.set key prev)
    f

let remaining_fraction () =
  if not (active ()) then None
  else
    match Domain.DLS.get key with
    | None -> None
    | Some s ->
      let now = Unix.gettimeofday () in
      (* Clamped: a nested deadline inherits a tighter [until] than its
         own budget implies, so the raw ratio can exceed 1; an expired
         one would go negative. *)
      Some (Float.max 0.0 (Float.min 1.0 ((s.until -. now) /. s.budget)))

let expired () =
  active ()
  &&
  match Domain.DLS.get key with
  | None -> false
  | Some s -> Unix.gettimeofday () >= s.until

(* Observation hook: this module sits below the telemetry library, so the
   flight recorder can't be called directly — whoever owns both layers
   (the evaluate/cetfuzz drivers) installs a callback instead.  The
   [observing] atomic keeps the unobserved path free of the ref read. *)
let observing = Atomic.make false
let observer : (string -> int -> unit) ref = ref (fun _ _ -> ())

let set_observer = function
  | None ->
    Atomic.set observing false;
    observer := fun _ _ -> ()
  | Some f ->
    observer := f;
    Atomic.set observing true

let check what =
  if active () then
    match Domain.DLS.get key with
    | None -> ()
    | Some s ->
      let now = Unix.gettimeofday () in
      (* >= so a budget below the clock's resolution (until == now at arm
         time) still reads as expired on the very next check. *)
      if now >= s.until then raise (Expired { what; seconds = s.budget })
      else if Atomic.get observing then
        !observer what (int_of_float ((s.until -. now) *. 1e9))
